(** Multi-client virtual-time workload driver.

    Models the paper's N-thread clients over the deterministic simulation:
    each client has its own {!Kamino_sim.Clock}; operations execute
    serially at the data level in virtual-time order (always the client
    whose clock is furthest behind runs next), and contention surfaces as
    lock waits that push a client's clock forward. Throughput is
    [total_ops / max client end-time]; per-operation latencies feed labeled
    series. *)

type result = {
  total_ops : int;
  elapsed_ns : int;  (** latest client clock at the end *)
  throughput_mops : float;  (** million ops per simulated second *)
  mean_latency_ns : float;
  latencies : (string * Kamino_sim.Stats.series) list;  (** by op label *)
}

(** [run ~engine ~clients ~total_ops ~step] executes [total_ops] operations
    round-robin-by-virtual-time over [clients] clients. [step ~client ()]
    must execute exactly one operation against [engine] (whose active clock
    the driver has already switched to the client's) and return the
    operation's label. *)
val run :
  engine:Kamino_core.Engine.t ->
  clients:int ->
  total_ops:int ->
  step:(client:int -> unit -> string) ->
  result

(** [latency_of result label] — the series for one op label, if any ops of
    that label ran. *)
val latency_of : result -> string -> Kamino_sim.Stats.series option

(** Merge all latency series of a result into one. *)
val all_latencies : result -> Kamino_sim.Stats.series

val pp_result : Format.formatter -> result -> unit
