module Clock = Kamino_sim.Clock
module Stats = Kamino_sim.Stats
module Engine = Kamino_core.Engine

type result = {
  total_ops : int;
  elapsed_ns : int;
  throughput_mops : float;
  mean_latency_ns : float;
  latencies : (string * Stats.series) list;
}

let run ~engine ~clients ~total_ops ~step =
  if clients <= 0 then invalid_arg "Driver.run: clients must be positive";
  (* Clients begin after whatever already happened on the engine's timeline
     (the load phase); otherwise their first operations would spuriously
     "wait" for load-time lock releases. *)
  let start = Engine.now engine in
  let clocks = Array.init clients (fun _ -> Clock.create_at start) in
  let latencies : (string, Stats.series) Hashtbl.t = Hashtbl.create 8 in
  let series label =
    match Hashtbl.find_opt latencies label with
    | Some s -> s
    | None ->
        let s = Stats.create () in
        Hashtbl.add latencies label s;
        s
  in
  for _ = 1 to total_ops do
    (* The client furthest behind in virtual time runs next; this is the
       conservative discrete-event order that makes lock release times
       known before any later client observes them. *)
    let client = ref 0 in
    for c = 1 to clients - 1 do
      if Clock.now clocks.(c) < Clock.now clocks.(!client) then client := c
    done;
    let clock = clocks.(!client) in
    Engine.set_clock engine clock;
    let t0 = Clock.now clock in
    let label = step ~client:!client () in
    Stats.add (series label) (float_of_int (Clock.now clock - t0))
  done;
  let elapsed_ns = Array.fold_left (fun acc c -> max acc (Clock.now c)) start clocks - start in
  let all = Hashtbl.fold (fun _ s acc -> Stats.merge acc s) latencies (Stats.create ()) in
  {
    total_ops;
    elapsed_ns;
    throughput_mops =
      (if elapsed_ns = 0 then 0.0
       else float_of_int total_ops /. (float_of_int elapsed_ns /. 1e9) /. 1e6);
    mean_latency_ns = Stats.mean all;
    latencies = Hashtbl.fold (fun k v acc -> (k, v) :: acc) latencies [];
  }

let latency_of result label = List.assoc_opt label result.latencies

let all_latencies result =
  List.fold_left (fun acc (_, s) -> Stats.merge acc s) (Stats.create ()) result.latencies

let pp_result fmt r =
  Format.fprintf fmt "%d ops in %.3f ms: %.3f M ops/s, mean latency %.0f ns" r.total_ops
    (float_of_int r.elapsed_ns /. 1e6)
    r.throughput_mops r.mean_latency_ns
