module Rng = Kamino_sim.Rng

type workload = A | B | C | D | E | F

let workload_of_string s =
  match String.lowercase_ascii s with
  | "a" -> Some A
  | "b" -> Some B
  | "c" -> Some C
  | "d" -> Some D
  | "e" -> Some E
  | "f" -> Some F
  | _ -> None

let name = function A -> "A" | B -> "B" | C -> "C" | D -> "D" | E -> "E" | F -> "F"

let all = [ A; B; C; D; E; F ]

type op = Read of int | Update of int | Insert of int | Scan of int * int | Rmw of int

type t = {
  workload : workload;
  zipf : Zipf.t option;  (* [None] = uniform key choice *)
  record_count : int;
  mutable inserted : int;  (* total key-space size including loaded records *)
}

let create ?(uniform = false) workload ~record_count ~theta =
  if record_count <= 0 then invalid_arg "Ycsb.create: record_count must be positive";
  {
    workload;
    zipf = (if uniform then None else Some (Zipf.create ~n:record_count ~theta));
    record_count;
    inserted = record_count;
  }

let key_space t = t.inserted

(* Zipfian choice over the loaded records, scattered — or uniform when the
   generator was created with [~uniform:true] (the distribution ablation;
   also the only option for theta outside Zipf's (0,1) domain). *)
let zipf_key t rng =
  match t.zipf with
  | Some z -> Zipf.sample_scrambled z rng
  | None -> Rng.int rng t.record_count

(* "Latest" distribution: zipfian over recency — rank 0 is the most
   recently inserted key. *)
let latest_key t rng =
  let rank =
    match t.zipf with
    | Some z -> Zipf.sample z rng
    | None -> Rng.int rng t.record_count
  in
  let k = t.inserted - 1 - rank in
  if k < 0 then 0 else k

let next t rng =
  let pct = Rng.int rng 100 in
  match t.workload with
  | A -> if pct < 50 then Read (zipf_key t rng) else Update (zipf_key t rng)
  | B -> if pct < 95 then Read (zipf_key t rng) else Update (zipf_key t rng)
  | C -> Read (zipf_key t rng)
  | D ->
      if pct < 95 then Read (latest_key t rng)
      else begin
        let k = t.inserted in
        t.inserted <- t.inserted + 1;
        Insert k
      end
  | E ->
      if pct < 95 then Scan (zipf_key t rng, 1 + Rng.int rng 100)
      else begin
        let k = t.inserted in
        t.inserted <- t.inserted + 1;
        Insert k
      end
  | F -> if pct < 50 then Read (zipf_key t rng) else Rmw (zipf_key t rng)

let op_name = function
  | Read _ -> "read"
  | Update _ -> "update"
  | Insert _ -> "insert"
  | Scan _ -> "scan"
  | Rmw _ -> "rmw"
