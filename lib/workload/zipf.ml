module Rng = Kamino_sim.Rng

type t = {
  n : int;
  theta : float;
  alpha : float;
  zetan : float;
  eta : float;
  half_pow_theta : float;
}

let zeta n theta =
  let acc = ref 0.0 in
  for i = 1 to n do
    acc := !acc +. (1.0 /. Float.pow (float_of_int i) theta)
  done;
  !acc

let create ~n ~theta =
  if n <= 0 then invalid_arg "Zipf.create: n must be positive";
  if theta <= 0.0 || theta >= 1.0 then invalid_arg "Zipf.create: theta must be in (0,1)";
  let zetan = zeta n theta in
  let zeta2 = zeta 2 theta in
  {
    n;
    theta;
    alpha = 1.0 /. (1.0 -. theta);
    zetan;
    eta =
      (1.0 -. Float.pow (2.0 /. float_of_int n) (1.0 -. theta)) /. (1.0 -. (zeta2 /. zetan));
    half_pow_theta = 1.0 +. Float.pow 0.5 theta;
  }

let n t = t.n

let sample t rng =
  let u = Rng.float rng in
  let uz = u *. t.zetan in
  if uz < 1.0 then 0
  else if uz < t.half_pow_theta then 1
  else begin
    let rank =
      int_of_float
        (float_of_int t.n *. Float.pow ((t.eta *. u) -. t.eta +. 1.0) t.alpha)
    in
    if rank >= t.n then t.n - 1 else if rank < 0 then 0 else rank
  end

(* Fibonacci-style 64-bit hash to scatter ranks over the key space. *)
let scramble n rank =
  let z = Int64.mul (Int64.of_int (rank + 1)) 0x9E3779B97F4A7C15L in
  let z = Int64.logxor z (Int64.shift_right_logical z 31) in
  Int64.to_int (Int64.logand z 0x3FFFFFFFFFFFFFFFL) mod n

let sample_scrambled t rng = scramble t.n (sample t rng)
