module Rng = Kamino_sim.Rng
module Heap = Kamino_heap.Heap
module Engine = Kamino_core.Engine

type tx_kind = New_order | Payment | Order_status | Delivery | Stock_level

let kind_name = function
  | New_order -> "new-order"
  | Payment -> "payment"
  | Order_status -> "order-status"
  | Delivery -> "delivery"
  | Stock_level -> "stock-level"

(* Object layouts (field byte offsets). Money amounts are integer cents. *)

(* Warehouse: ytd. *)
let w_ytd = 0
let w_size = 16

(* District: ytd, next_o_id, initial_o_id. *)
let d_ytd = 0
let d_next_o_id = 8
let d_initial_o_id = 16
let d_size = 40

(* Customer: balance, ytd_payment, payment_cnt, delivery_cnt, last_order. *)
let c_balance = 0
let c_ytd_payment = 8
let c_payment_cnt = 16
let c_delivery_cnt = 24
let c_last_order = 32
let c_size = 40

(* Stock: quantity, ytd, order_cnt. *)
let s_quantity = 0
let s_ytd = 8
let s_order_cnt = 16
let s_size = 24

(* Order: customer, ol_cnt, carrier, total, first line pointer, next
   undelivered order (per-district delivery queue). Order lines are
   separate objects, as in TPC-C's ORDER-LINE table. *)
let o_customer = 0
let o_ol_cnt = 8
let o_carrier = 16
let o_total = 24
let o_first_line = 32
let o_next_order = 40
let o_size = 48
let max_lines = 15

(* Order line: item, quantity, amount, next line. *)
let ol_item = 0
let ol_qty = 8
let ol_amount = 16
let ol_next = 24
let ol_size = 32

(* Per-district new-order queue appendix stored in the district object. *)
let d_oldest_undelivered = 24
let d_newest_undelivered = 32

type t = {
  engine : Engine.t;
  warehouses : Heap.ptr array;
  districts : Heap.ptr array array;  (* [w].[d] *)
  customers : Heap.ptr array array;  (* [w * districts + d].[c] *)
  stock : Heap.ptr array;
  items : int;
  initial_o_id : int;
}

(* Population runs in chunked transactions so table sizes are not bounded
   by the intent log's per-transaction entry limit. *)
let alloc_table engine n size init =
  let chunk = 40 in
  let out = Array.make n Heap.null in
  let i = ref 0 in
  while !i < n do
    let stop = min n (!i + chunk) in
    Engine.with_tx engine (fun tx ->
        for j = !i to stop - 1 do
          let p = Engine.alloc tx size in
          init tx p j;
          out.(j) <- p
        done);
    i := stop
  done;
  out

let setup engine ~warehouses ~districts_per_w ~customers_per_district ~items ~rng =
  ignore rng;
  let initial_o_id = 1 in
  let ws = alloc_table engine warehouses w_size (fun _ _ _ -> ()) in
  let ds =
    Array.init warehouses (fun _ ->
        alloc_table engine districts_per_w d_size (fun tx p _ ->
            Engine.write_int tx p d_next_o_id initial_o_id;
            Engine.write_int tx p d_initial_o_id initial_o_id))
  in
  let cs =
    Array.init (warehouses * districts_per_w) (fun _ ->
        alloc_table engine customers_per_district c_size (fun _ _ _ -> ()))
  in
  let stock =
    alloc_table engine items s_size (fun tx p _ -> Engine.write_int tx p s_quantity 100)
  in
  { engine; warehouses = ws; districts = ds; customers = cs; stock; items; initial_o_id }

let pick rng a = a.(Rng.int rng (Array.length a))

let district_customers t w d =
  t.customers.((w * Array.length t.districts.(0)) + d)

let rand_wd t rng =
  let w = Rng.int rng (Array.length t.warehouses) in
  let d = Rng.int rng (Array.length t.districts.(w)) in
  (w, d)

let new_order t rng =
  let w, d = rand_wd t rng in
  let district = t.districts.(w).(d) in
  let customers = district_customers t w d in
  let customer = pick rng customers in
  let ol_cnt = 5 + Rng.int rng (max_lines - 4) in
  (* Pre-draw the lines so the RNG is not consumed inside the transaction
     body in a way that depends on engine internals. *)
  let lines =
    Array.init ol_cnt (fun _ -> (Rng.int rng t.items, 1 + Rng.int rng 10))
  in
  Engine.with_tx t.engine (fun tx ->
      Engine.add tx district;
      let o_id = Engine.read_int tx district d_next_o_id in
      Engine.write_int tx district d_next_o_id (o_id + 1);
      let order = Engine.alloc tx o_size in
      Engine.write_int tx order o_customer customer;
      Engine.write_int tx order o_ol_cnt ol_cnt;
      (* Order lines are separate objects chained off the order, updating
         the corresponding stock rows as they are created. *)
      let total = ref 0 in
      let first = ref Heap.null in
      Array.iter
        (fun (item, qty) ->
          let s = t.stock.(item) in
          Engine.add tx s;
          let q = Engine.read_int tx s s_quantity in
          let q' = if q - qty >= 10 then q - qty else q - qty + 91 in
          Engine.write_int tx s s_quantity q';
          Engine.write_int tx s s_ytd (Engine.read_int tx s s_ytd + qty);
          Engine.write_int tx s s_order_cnt (Engine.read_int tx s s_order_cnt + 1);
          let line = Engine.alloc tx ol_size in
          let amount = qty * 100 in
          Engine.write_int tx line ol_item item;
          Engine.write_int tx line ol_qty qty;
          Engine.write_int tx line ol_amount amount;
          Engine.write_int tx line ol_next !first;
          first := line;
          total := !total + amount)
        lines;
      Engine.write_int tx order o_first_line !first;
      Engine.write_int tx order o_total !total;
      (* Append to the district's undelivered-order queue. *)
      let newest = Engine.read_int tx district d_newest_undelivered in
      if newest = Heap.null then Engine.write_int tx district d_oldest_undelivered order
      else begin
        Engine.add tx newest;
        Engine.write_int tx newest o_next_order order
      end;
      Engine.write_int tx district d_newest_undelivered order;
      Engine.add tx customer;
      Engine.write_int tx customer c_last_order order)

let payment t rng =
  let w, d = rand_wd t rng in
  let warehouse = t.warehouses.(w) in
  let district = t.districts.(w).(d) in
  let customer = pick rng (district_customers t w d) in
  let amount = 100 + Rng.int rng 500000 in
  Engine.with_tx t.engine (fun tx ->
      Engine.add tx warehouse;
      Engine.write_int tx warehouse w_ytd (Engine.read_int tx warehouse w_ytd + amount);
      Engine.add tx district;
      Engine.write_int tx district d_ytd (Engine.read_int tx district d_ytd + amount);
      Engine.add tx customer;
      Engine.write_int tx customer c_balance (Engine.read_int tx customer c_balance - amount);
      Engine.write_int tx customer c_ytd_payment
        (Engine.read_int tx customer c_ytd_payment + amount);
      Engine.write_int tx customer c_payment_cnt
        (Engine.read_int tx customer c_payment_cnt + 1))

let order_status t rng =
  let w, d = rand_wd t rng in
  let customer = pick rng (district_customers t w d) in
  Engine.with_tx t.engine (fun tx ->
      Engine.read_lock tx customer;
      let _balance = Engine.read_int tx customer c_balance in
      let order = Engine.read_int tx customer c_last_order in
      if order <> Heap.null then begin
        Engine.read_lock tx order;
        let rec read_lines line =
          if line <> Heap.null then begin
            ignore (Engine.read_int tx line ol_item);
            read_lines (Engine.read_int tx line ol_next)
          end
        in
        read_lines (Engine.read_int tx order o_first_line)
      end)

let delivery t rng =
  (* TPC-C delivery processes the district's oldest undelivered order:
     assign a carrier, credit the customer, consume the order's lines
     (freed — exercising transactional deallocation under load). *)
  let w, d = rand_wd t rng in
  let district = t.districts.(w).(d) in
  Engine.with_tx t.engine (fun tx ->
      let order = Engine.read_int tx district d_oldest_undelivered in
      if order <> Heap.null then begin
        Engine.add tx district;
        Engine.add tx order;
        let next = Engine.read_int tx order o_next_order in
        Engine.write_int tx district d_oldest_undelivered next;
        if next = Heap.null then Engine.write_int tx district d_newest_undelivered Heap.null;
        Engine.write_int tx order o_carrier (1 + Rng.int rng 10);
        let total = Engine.read_int tx order o_total in
        let customer = Engine.read_int tx order o_customer in
        (* consume the order lines *)
        let rec free_lines line =
          if line <> Heap.null then begin
            let next_line = Engine.read_int tx line ol_next in
            Engine.free tx line;
            free_lines next_line
          end
        in
        free_lines (Engine.read_int tx order o_first_line);
        Engine.write_int tx order o_first_line Heap.null;
        Engine.add tx customer;
        Engine.write_int tx customer c_balance (Engine.read_int tx customer c_balance + total);
        Engine.write_int tx customer c_delivery_cnt
          (Engine.read_int tx customer c_delivery_cnt + 1)
      end)

let stock_level t rng =
  Engine.with_tx t.engine (fun tx ->
      let low = ref 0 in
      for _ = 1 to 20 do
        let s = pick rng t.stock in
        Engine.read_lock tx s;
        if Engine.read_int tx s s_quantity < 15 then incr low
      done;
      ignore !low)

let sample_kind rng =
  let p = Rng.int rng 100 in
  if p < 45 then New_order
  else if p < 88 then Payment
  else if p < 92 then Order_status
  else if p < 96 then Delivery
  else Stock_level

let run t rng = function
  | New_order -> new_order t rng
  | Payment -> payment t rng
  | Order_status -> order_status t rng
  | Delivery -> delivery t rng
  | Stock_level -> stock_level t rng

let run_mix t rng =
  let kind = sample_kind rng in
  run t rng kind;
  kind

let consistency_check t =
  let e = t.engine in
  let error = ref None in
  let fail fmt = Printf.ksprintf (fun s -> if !error = None then error := Some s) fmt in
  Array.iteri
    (fun w wp ->
      let w_total = Engine.peek_int e wp w_ytd in
      let d_total =
        Array.fold_left (fun acc dp -> acc + Engine.peek_int e dp d_ytd) 0 t.districts.(w)
      in
      if w_total <> d_total then
        fail "warehouse %d: W_YTD %d <> sum(D_YTD) %d" w w_total d_total)
    t.warehouses;
  Array.iter
    (fun dps ->
      Array.iter
        (fun dp ->
          if Engine.peek_int e dp d_next_o_id < Engine.peek_int e dp d_initial_o_id then
            fail "district next_o_id went backwards")
        dps)
    t.districts;
  Array.iter
    (fun sp ->
      let q = Engine.peek_int e sp s_quantity in
      if q < 0 || q > 200 then fail "stock quantity %d out of bounds" q)
    t.stock;
  (* Delivery-queue integrity: the undelivered chain is acyclic, all its
     orders are carrier-less, and its tail pointer is consistent. *)
  Array.iter
    (fun dps ->
      Array.iter
        (fun dp ->
          let oldest = Engine.peek_int e dp d_oldest_undelivered in
          let newest = Engine.peek_int e dp d_newest_undelivered in
          if (oldest = Heap.null) <> (newest = Heap.null) then
            fail "district queue endpoints disagree";
          let rec walk order last n =
            if n > 1_000_000 then fail "undelivered queue too long (cycle?)"
            else if order = Heap.null then begin
              if last <> newest then fail "queue tail pointer stale"
            end
            else begin
              if Engine.peek_int e order o_carrier <> 0 then
                fail "undelivered order already has a carrier";
              walk (Engine.peek_int e order o_next_order) order (n + 1)
            end
          in
          walk oldest Heap.null 0)
        dps)
    t.districts;
  match !error with None -> Ok () | Some e -> Error e
