(** TPC-C-lite: a scaled-down TPC-C benchmark over the persistent heap.

    Implements the five transaction types with the standard mix (45%
    new-order, 43% payment, 4% each of order-status, delivery,
    stock-level) over warehouse / district / customer / stock / order
    objects, each transaction touching several objects — the
    multi-object-transaction shape that Figure 1 and Figure 13 measure.
    Scaled for simulation (configurable warehouses/customers/items) and
    validated by a consistency check (TPC-C's W_YTD = sum(D_YTD)
    invariant, non-negative balances bookkeeping, monotone order ids). *)

type t

type tx_kind = New_order | Payment | Order_status | Delivery | Stock_level

val kind_name : tx_kind -> string

(** [setup engine ~warehouses ~districts_per_w ~customers_per_district
    ~items ~rng] allocates and populates all tables (one transaction per
    table chunk). *)
val setup :
  Kamino_core.Engine.t ->
  warehouses:int ->
  districts_per_w:int ->
  customers_per_district:int ->
  items:int ->
  rng:Kamino_sim.Rng.t ->
  t

(** [sample_kind rng] draws a transaction type from the standard mix. *)
val sample_kind : Kamino_sim.Rng.t -> tx_kind

(** [run t rng kind] executes one transaction of the given type. *)
val run : t -> Kamino_sim.Rng.t -> tx_kind -> unit

(** [run_mix t rng] draws from the mix and runs it; returns the kind. *)
val run_mix : t -> Kamino_sim.Rng.t -> tx_kind

(** TPC-C consistency conditions that must hold on committed state:
    W_YTD = sum of the warehouse's D_YTD; every district's NEXT_O_ID is at
    least its initial value; stock quantities within bounds. *)
val consistency_check : t -> (unit, string) result
