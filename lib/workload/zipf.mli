(** Zipfian key-popularity distributions, as used by YCSB.

    Implements the classic Gray et al. sampling method with a precomputed
    zeta normalization. [sample] returns a {e rank} (0 = most popular);
    [sample_scrambled] hashes the rank over the key space so hot keys are
    spread out, which is what YCSB's ScrambledZipfian does and what the
    paper's workloads imply. *)

type t

(** [create ~n ~theta] over ranks [0, n). YCSB's default skew is
    [theta = 0.99]. Raises [Invalid_argument] unless [n > 0] and
    [0 < theta < 1]. *)
val create : n:int -> theta:float -> t

val n : t -> int

(** [sample t rng] draws a rank in [0, n), rank 0 being the hottest. *)
val sample : t -> Kamino_sim.Rng.t -> int

(** [sample_scrambled t rng] draws a key in [0, n) with zipfian popularity
    but hash-scattered identity. *)
val sample_scrambled : t -> Kamino_sim.Rng.t -> int

(** [scramble n rank] is the pure hash [sample_scrambled] applies to a
    sampled rank to scatter hot ranks over the [n]-key space. Exposed so
    tests can pin [sample_scrambled = scramble n (sample t rng)] without
    re-deriving the hash. *)
val scramble : int -> int -> int
