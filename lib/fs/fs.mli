(** A small POSIX-flavored filesystem over the transactional engine.

    The application layer the paper's evaluation shape calls for: deep
    object graphs, variable-size data and cross-object invariants, none
    of which a KV point-write mix exercises. Every operation —
    [create], [write], [mkdir], [readdir], [rename], [unlink],
    [truncate], ... — is one multi-object transaction, so under every
    engine kind the filesystem is all-or-nothing at any crash point
    (modulo [No_logging], which is exactly Figure 1's motivation), and
    {!Fs_check.fsck} can re-derive every invariant from the committed
    heap after recovery.

    {b On-heap layout} (all fields are 8-byte words unless noted; see
    {!Layout} for offsets):

    - {e superblock}: anchored at the heap root. Magic, version, the
      inode-table B+Tree descriptor, the inode-number allocator
      ([next_ord], [ino_base], [ino_stride] — the stride is how the
      sharded façade gives each shard its own congruence class), the
      root directory's ino, and exact counters (inodes, directories,
      data blocks, file bytes) that fsck recomputes.
    - {e inode table}: a {!Kamino_index.Btree} mapping ino -> inode
      object.
    - {e inode}: ino, kind (file/dir), link count, size (file bytes /
      directory entry count), parent ino (directories; the root is its
      own parent; files carry [-1]), a generation counter bumped by
      rename, and a head pointer — extent-chain head for files, the
      directory-index B+Tree descriptor for directories.
    - {e directory index}: a B+Tree mapping [hash(name) land mask] ->
      head of a chain of {e dirent} objects (collision chain through
      [d_next]); each dirent holds the target ino and the name (up to
      {!Layout.max_name_len} bytes). [dir_hash_bits] can be tiny in
      tests to force collisions.
    - {e file extents}: a chain of extent nodes, each holding
      {!Layout.ext_slots} data-block pointers. A file of size [s] owns
      {e exactly} [ceil(s / block_size)] blocks and exactly the chain
      nodes those need — no holes ever materialize as missing blocks
      (sparse writes allocate zeroed blocks), slots past EOF are null,
      and bytes past EOF in the last block are zero, which makes torn
      writes visible to fsck.

    Transactions follow the engine's granularity argument: metadata
    objects are declared whole (they are a cache line or two), file
    data is declared with byte-range [add_field] intents on exactly the
    written span — what makes the copying baselines pay for whole-block
    logging while Kamino logs 8-byte-scale intents.

    The [*_tx] variants take a caller-owned transaction plus an
    [?on_step] hook fired at each internal mutation boundary — the
    crash-injection surface the fs crash-matrix dimension drives
    (crash at step [k] for every [k], recover, fsck). The plain
    variants open their own transaction, emit a {!Kamino_obs.Obs.k_fs_op}
    span and feed the [fs.op_ns.<op>] histogram of the engine's metrics
    registry. *)

module Engine = Kamino_core.Engine
module Heap = Kamino_heap.Heap
module Btree = Kamino_index.Btree

exception Fs_error of string
(** Semantic failure (name exists, directory not empty, would create a
    cycle, ...). Raised before any mutation, so an aborted operation
    leaves no trace even on engines that cannot roll back. *)

(** Word offsets of every persistent structure — exported so
    {!Fs_check} and white-box tests can read the heap independently of
    this module's accessors. *)
module Layout : sig
  val sb_magic : int
  val sb_version : int
  val sb_itab : int
  val sb_next_ord : int
  val sb_ino_base : int
  val sb_ino_stride : int
  val sb_root_ino : int
  val sb_inode_count : int
  val sb_dir_count : int
  val sb_block_count : int
  val sb_data_bytes : int
  val sb_block_size : int
  val sb_hash_bits : int
  val sb_size : int
  val magic : int
  val version : int

  val i_ino : int
  val i_kind : int
  val i_nlink : int
  val i_size : int
  val i_parent : int
  val i_gen : int
  val i_head : int
  val inode_size : int
  val kind_file : int
  val kind_dir : int

  val d_next : int
  val d_ino : int
  val d_nlen : int
  val d_name : int
  val max_name_len : int
  val dirent_size : int

  val e_next : int
  val e_slot : int -> int
  val ext_slots : int
  val ext_size : int

  val itab_node_size : int
  val dir_node_size : int
end

type t

type kind = File | Dir

type stat = {
  ino : int;
  kind : kind;
  nlink : int;
  size : int;  (** file bytes, or directory entry count *)
  parent : int;  (** containing directory (dirs only; root = own ino) *)
  gen : int;  (** bumped by every rename of this inode *)
}

(** {1 Lifecycle} *)

(** [format engine] initializes a filesystem on an empty engine heap:
    superblock (becomes the heap root), inode table, and — unless
    [with_root:false] — the root directory, all in one transaction.

    [block_size] (default 512, multiple of 8) is the data-block payload
    size; [dir_hash_bits] (default 40) masks the directory name hash
    ([2] in tests forces collision chains). [ino_base]/[ino_stride]
    (defaults 0/1) put this filesystem's inos on the congruence class
    [base + k * stride] — shard [i] of [n] uses [(i, n)] so every shard
    allocates inos it owns. [with_root:false] is for non-root shards of
    the sharded façade, whose namespace hangs off shard 0's root.

    [obs_track] (default 4) is the Perfetto track for
    {!Kamino_obs.Obs.k_fs_op} spans, named ["fs.ops"]. *)
val format :
  ?block_size:int ->
  ?dir_hash_bits:int ->
  ?ino_base:int ->
  ?ino_stride:int ->
  ?with_root:bool ->
  ?obs_track:int ->
  Engine.t ->
  t

(** [attach engine] reopens a formatted filesystem (e.g. a fresh
    process after a crash — within a process, handles survive
    {!Engine.crash}/{!Engine.recover} unchanged). Raises [Fs_error] if
    the heap root is not a superblock. *)
val attach : ?obs_track:int -> Engine.t -> t

val engine : t -> Engine.t
val block_size : t -> int
val root_ino : t -> int
(** Raises [Fs_error] on a filesystem formatted [with_root:false]. *)

val has_root : t -> bool
val ino_base : t -> int
val ino_stride : t -> int

(** {1 Operations}

    Directories are named by ino ([dir]); the root comes from
    {!root_ino}. Each call is one transaction. *)

val create : ?on_step:(string -> unit) -> t -> dir:int -> string -> int
(** Create an empty regular file; returns its ino. Raises [Fs_error]
    if the name exists. *)

val mkdir : ?on_step:(string -> unit) -> t -> dir:int -> string -> int

val lookup : t -> dir:int -> string -> int option
(** Committed-state name lookup (single-shard view; dangling entries of
    a sharded namespace resolve to [None] only via {!Shard_fs}). *)

val resolve : t -> string -> int option
(** ["/a/b/c"]-style path walk from the root (committed state). *)

val stat : t -> int -> stat
val stat_tx : Engine.tx -> t -> int -> stat

val write : ?on_step:(string -> unit) -> t -> ino:int -> off:int -> string -> unit
(** Write bytes at [off], extending the file as needed; a write past
    EOF materializes the gap as zeroed blocks. *)

val read : t -> ino:int -> off:int -> len:int -> string
(** Read up to [len] bytes at [off]; short at EOF. *)

val readdir : t -> dir:int -> (string * int) list
(** All entries, in name-hash order (deterministic). *)

val rename :
  ?on_step:(string -> unit) ->
  t ->
  src:int ->
  src_name:string ->
  dst:int ->
  dst_name:string ->
  unit
(** Atomically move [src_name] in directory [src] to [dst_name] in
    directory [dst]: drops the source dirent, adds the target dirent,
    bumps the moved inode's generation and (for directories) rewrites
    its parent pointer — one transaction touching source dir, target
    dir and the moved inode, the classic atomicity test. An existing
    [dst_name] regular file is replaced (and its last link dropped);
    anything else there raises [Fs_error], as does moving a directory
    under its own subtree (cycle). *)

val link : ?on_step:(string -> unit) -> t -> ino:int -> dir:int -> string -> unit
(** Hard link (regular files only). *)

val unlink : ?on_step:(string -> unit) -> t -> dir:int -> string -> unit
(** Drop a regular file's dirent; at link count zero the inode, its
    extent chain and every data block are freed in the same
    transaction. *)

val rmdir : ?on_step:(string -> unit) -> t -> dir:int -> string -> unit
(** Remove an {e empty} directory (dirent, index tree, inode). *)

val truncate : ?on_step:(string -> unit) -> t -> ino:int -> len:int -> unit
(** Grow (zero-filled) or shrink; shrinking frees blocks and trailing
    extent nodes and re-zeroes the kept tail. *)

val dump : t -> string
(** Human-readable recursive tree listing (committed state), entries
    sorted by name. *)

(** {1 Transactional primitives}

    Building blocks of the composite operations, exported for the
    sharded façade ({!Shard_fs}), which runs each piece on the owning
    shard's transaction inside one cross-shard 2PC. All take the
    transaction of {e this} filesystem's engine. [on_step] fires before
    each mutation phase. *)

val create_tx : ?on_step:(string -> unit) -> Engine.tx -> t -> dir:int -> string -> int
val mkdir_tx : ?on_step:(string -> unit) -> Engine.tx -> t -> dir:int -> string -> int

val rename_tx :
  ?on_step:(string -> unit) ->
  Engine.tx ->
  t ->
  src:int ->
  src_name:string ->
  dst:int ->
  dst_name:string ->
  unit

val link_tx : ?on_step:(string -> unit) -> Engine.tx -> t -> ino:int -> dir:int -> string -> unit
val unlink_tx : ?on_step:(string -> unit) -> Engine.tx -> t -> dir:int -> string -> unit
val rmdir_tx : ?on_step:(string -> unit) -> Engine.tx -> t -> dir:int -> string -> unit
val write_tx : ?on_step:(string -> unit) -> Engine.tx -> t -> ino:int -> off:int -> string -> unit
val truncate_tx : ?on_step:(string -> unit) -> Engine.tx -> t -> ino:int -> len:int -> unit
val read_op_tx : Engine.tx -> t -> ino:int -> off:int -> len:int -> string
val readdir_tx : Engine.tx -> t -> dir:int -> (string * int) list

val mknod_tx : Engine.tx -> t -> kind -> parent:int -> int
(** Allocate an ino (from this filesystem's congruence class) and its
    inode with link count 1; directories get a fresh empty index.
    Does {e not} add a dirent — the caller links it, possibly on
    another shard. *)

val dirent_add_tx :
  ?on_step:(string -> unit) -> Engine.tx -> t -> dir:int -> name:string -> ino:int -> unit
(** Insert a dirent (no existence check beyond name validity — use
    {!dirent_lookup_tx} first) and bump the directory's entry count.
    The target inode is untouched (it may live on another shard). *)

val dirent_remove_tx :
  ?on_step:(string -> unit) -> Engine.tx -> t -> dir:int -> name:string -> int
(** Remove a dirent and return the ino it referenced. The target inode
    is untouched. *)

val dirent_lookup_tx : Engine.tx -> t -> dir:int -> name:string -> int option

val add_link_tx : Engine.tx -> t -> ino:int -> unit
(** Increment a regular file's link count. *)

val drop_file_link_tx :
  ?on_step:(string -> unit) -> Engine.tx -> t -> ino:int -> unit
(** Decrement a regular file's link count; at zero, free the inode,
    extent chain and data blocks and retire it from the inode table. *)

val free_dir_tx : Engine.tx -> t -> ino:int -> unit
(** Free an {e empty, already unlinked} directory: index tree, inode,
    inode-table entry. *)

val touch_moved_tx : Engine.tx -> t -> ino:int -> new_parent:int option -> unit
(** Rename's inode-side half: bump the generation and, for a moved
    directory, set the new parent. *)

val check_name : string -> unit
(** Raises [Fs_error] unless the name is 1..{!Layout.max_name_len}
    bytes with no ['/'] or NUL and is not ["."] / [".."]. *)

val name_hash_raw : string -> int
(** The full-width (pre-mask) deterministic name hash — the sharded
    façade's placement input. *)

(** {1 Introspection (fsck, tests)} *)

val superblock : t -> Heap.ptr
val itab : t -> Btree.t
val hash_mask : t -> int
val hash_name : t -> string -> int
val inode_ptr : t -> int -> Heap.ptr option
(** Committed inode-table lookup. *)

val op_create : int
val op_mkdir : int
val op_write : int
val op_read : int
val op_readdir : int
val op_rename : int
val op_unlink : int
val op_truncate : int
val op_link : int
val op_rmdir : int
val op_fsck : int
val op_name : int -> string

val record_op : t -> op:int -> t0:int -> ino:int -> aux:int -> unit
(** Observe a completed operation that ran outside {!op_span}'s
    wrappers (fsck): feeds [fs.op_ns.<op>] and emits the k_fs_op span
    with [dur = now - t0]. *)
