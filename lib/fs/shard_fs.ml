(* Inode-routed sharded filesystem façade: one namespace over [n]
   Shard engines, shard [i] owning ino congruence class [(i, n)].
   Single-shard operations delegate to the plain [Fs] operations on the
   owning shard (bit-identical to a standalone engine); cross-shard
   operations decompose into the exported [Fs] transactional primitives,
   each run on its owning shard's transaction inside one
   [Shard.with_cross_tx] 2PC. *)

module Engine = Kamino_core.Engine
module Shard = Kamino_shard.Shard
module Obs = Kamino_obs.Obs

type t = { shard : Shard.t; fss : Fs.t array; n : int }

let err fmt = Printf.ksprintf (fun s -> raise (Fs.Fs_error s)) fmt

let step on_step label =
  match on_step with Some f -> f label | None -> ()

(* Map the 2PC protocol positions into the same string-label stream as
   the fs mutation steps, so one crash-injection loop covers both. *)
let cross_hook on_step =
  match on_step with
  | None -> None
  | Some f ->
      Some
        (function
        | Shard.Prepared i -> f (Printf.sprintf "prepare:%d" i)
        | Shard.Marker_written -> f "marker"
        | Shard.Committed i -> f (Printf.sprintf "commit:%d" i)
        | Shard.Marker_cleared -> f "clear")

let create ?config ?obs ?(obs_track_base = 1) ?block_size ?dir_hash_bits
    ~kind ~seed ~shards () =
  if shards < 1 then invalid_arg "Shard_fs.create: shards < 1";
  let shard = Shard.create ?config ?obs ~obs_track_base ~kind ~seed ~shards () in
  let fss =
    Array.init shards (fun i ->
        let track = obs_track_base + (4 * i) + 3 in
        let fs =
          Fs.format ?block_size ?dir_hash_bits ~ino_base:i ~ino_stride:shards
            ~with_root:(i = 0) ~obs_track:track
            (Shard.engine shard i)
        in
        let ring = Engine.obs (Shard.engine shard i) in
        if Obs.enabled ring then
          Obs.name_track ring track (Printf.sprintf "shard%d.fs" i);
        fs)
  in
  { shard; fss; n = shards }

let shard t = t.shard
let shards t = t.n
let fs t i = t.fss.(i)
let fss t = t.fss

let owner t ino =
  if ino < 0 then err "Shard_fs: invalid ino %d" ino;
  ino mod t.n

let root_ino t = Fs.root_ino t.fss.(0)
let crash t = Shard.crash t.shard
let recover t = Shard.recover t.shard
let drain_backups t = Shard.drain_backups t.shard

(* Deterministic placement of a fresh inode: spread by parent and name
   so sibling creations fan out, with no volatile placement state. *)
let placement t ~dir name = (Fs.name_hash_raw name + dir) mod t.n

let record fs op ~t0 ~ino ~aux = Fs.record_op fs ~op ~t0 ~ino ~aux

(* -------------------------------------------------------------- *)
(* Single-shard reads                                              *)

let lookup t ~dir name = Fs.lookup t.fss.(owner t dir) ~dir name
let readdir t ~dir = Fs.readdir t.fss.(owner t dir) ~dir
let stat t ino = Fs.stat t.fss.(owner t ino) ino
let read t ~ino ~off ~len = Fs.read t.fss.(owner t ino) ~ino ~off ~len

let resolve t path =
  let root = root_ino t in
  let parts = List.filter (fun s -> s <> "") (String.split_on_char '/' path) in
  let rec go cur = function
    | [] -> Some cur
    | name :: rest -> (
        if (stat t cur).Fs.kind <> Fs.Dir then None
        else
          match lookup t ~dir:cur name with
          | None -> None
          | Some i -> go i rest)
  in
  go root parts

(* -------------------------------------------------------------- *)
(* Single-shard writes (the owning shard's engine is a standalone
   engine, so the plain Fs operation — own transaction, span,
   histogram — is exactly right).                                  *)

let write ?on_step t ~ino ~off data =
  Fs.write ?on_step t.fss.(owner t ino) ~ino ~off data

let truncate ?on_step t ~ino ~len =
  Fs.truncate ?on_step t.fss.(owner t ino) ~ino ~len

(* -------------------------------------------------------------- *)
(* Namespace operations: cross-shard when the participating inodes
   land on different shards.                                       *)

let mk_generic knd op ?on_step t ~dir name =
  Fs.check_name name;
  let p = owner t dir in
  let c = placement t ~dir name in
  if p = c then
    match knd with
    | Fs.File -> Fs.create ?on_step t.fss.(p) ~dir name
    | Fs.Dir -> Fs.mkdir ?on_step t.fss.(p) ~dir name
  else begin
    let fsp = t.fss.(p) in
    let t0 = Engine.now (Fs.engine fsp) in
    let ino =
      Shard.with_cross_tx
        ?on_step:(cross_hook on_step)
        t.shard [ min p c; max p c ]
        (fun tx_of ->
          (match Fs.dirent_lookup_tx (tx_of p) fsp ~dir ~name with
          | Some _ -> err "create: %S already exists" name
          | None -> ());
          step on_step "mknod";
          let parent = match knd with Fs.Dir -> dir | Fs.File -> -1 in
          let ino = Fs.mknod_tx (tx_of c) t.fss.(c) knd ~parent in
          Fs.dirent_add_tx ?on_step (tx_of p) fsp ~dir ~name ~ino;
          ino)
    in
    record fsp op ~t0 ~ino ~aux:dir;
    ino
  end

let create_file ?on_step t ~dir name =
  mk_generic Fs.File Fs.op_create ?on_step t ~dir name

let mkdir ?on_step t ~dir name =
  mk_generic Fs.Dir Fs.op_mkdir ?on_step t ~dir name

let link ?on_step t ~ino ~dir name =
  Fs.check_name name;
  let p = owner t dir in
  let f = owner t ino in
  let st = Fs.stat t.fss.(f) ino in
  if st.Fs.kind <> Fs.File then err "link: ino %d is not a regular file" ino;
  if p = f then Fs.link ?on_step t.fss.(p) ~ino ~dir name
  else begin
    let fsp = t.fss.(p) in
    let t0 = Engine.now (Fs.engine fsp) in
    Shard.with_cross_tx
      ?on_step:(cross_hook on_step)
      t.shard [ min p f; max p f ]
      (fun tx_of ->
        (match Fs.dirent_lookup_tx (tx_of p) fsp ~dir ~name with
        | Some _ -> err "link: %S already exists" name
        | None -> ());
        step on_step "nlink";
        Fs.add_link_tx (tx_of f) t.fss.(f) ~ino;
        Fs.dirent_add_tx ?on_step (tx_of p) fsp ~dir ~name ~ino);
    record fsp Fs.op_link ~t0 ~ino ~aux:dir
  end

let unlink ?on_step t ~dir name =
  Fs.check_name name;
  let p = owner t dir in
  let fsp = t.fss.(p) in
  match Fs.lookup fsp ~dir name with
  | None -> err "unlink: no entry %S" name
  | Some ino ->
      let f = owner t ino in
      let st = Fs.stat t.fss.(f) ino in
      if st.Fs.kind <> Fs.File then err "unlink: %S is a directory" name;
      if p = f then Fs.unlink ?on_step fsp ~dir name
      else begin
        let t0 = Engine.now (Fs.engine fsp) in
        Shard.with_cross_tx
          ?on_step:(cross_hook on_step)
          t.shard [ min p f; max p f ]
          (fun tx_of ->
            (match Fs.dirent_lookup_tx (tx_of p) fsp ~dir ~name with
            | Some i when i = ino -> ()
            | _ -> err "unlink: entry %S changed underneath" name);
            ignore (Fs.dirent_remove_tx ?on_step (tx_of p) fsp ~dir ~name);
            Fs.drop_file_link_tx ?on_step (tx_of f) t.fss.(f) ~ino);
        record fsp Fs.op_unlink ~t0 ~ino ~aux:dir
      end

let rmdir ?on_step t ~dir name =
  Fs.check_name name;
  let p = owner t dir in
  let fsp = t.fss.(p) in
  match Fs.lookup fsp ~dir name with
  | None -> err "rmdir: no entry %S" name
  | Some ino ->
      let d = owner t ino in
      let st = Fs.stat t.fss.(d) ino in
      if st.Fs.kind <> Fs.Dir then err "rmdir: %S is not a directory" name;
      if p = d then Fs.rmdir ?on_step fsp ~dir name
      else begin
        let t0 = Engine.now (Fs.engine fsp) in
        Shard.with_cross_tx
          ?on_step:(cross_hook on_step)
          t.shard [ min p d; max p d ]
          (fun tx_of ->
            (match Fs.dirent_lookup_tx (tx_of p) fsp ~dir ~name with
            | Some i when i = ino -> ()
            | _ -> err "rmdir: entry %S changed underneath" name);
            let st = Fs.stat_tx (tx_of d) t.fss.(d) ino in
            if st.Fs.size <> 0 then err "rmdir: %S not empty" name;
            ignore (Fs.dirent_remove_tx ?on_step (tx_of p) fsp ~dir ~name);
            Fs.free_dir_tx (tx_of d) t.fss.(d) ~ino);
        record fsp Fs.op_rmdir ~t0 ~ino ~aux:dir
      end

(* Committed-state ancestry walk for the cross-shard cycle check: the
   namespace is serial here (one client), so the committed parents are
   current. Terminates at the root (its own parent). *)
let check_no_cycle t ~moved ~dst =
  let rec up cur fuel =
    if fuel = 0 then err "rename: parent chain does not terminate";
    if cur = moved then err "rename: would move a directory under itself";
    let st = stat t cur in
    if st.Fs.parent <> cur then up st.Fs.parent (fuel - 1)
  in
  up dst 1_000_000

let rename ?on_step t ~src ~src_name ~dst ~dst_name =
  Fs.check_name src_name;
  Fs.check_name dst_name;
  let ps = owner t src in
  let pd = owner t dst in
  let fs_s = t.fss.(ps) in
  let fs_d = t.fss.(pd) in
  let m =
    match Fs.lookup fs_s ~dir:src src_name with
    | Some m -> m
    | None -> err "rename: no entry %S" src_name
  in
  if src = dst && String.equal src_name dst_name then ()
  else begin
    let pm = owner t m in
    let mst = Fs.stat t.fss.(pm) m in
    let clobber =
      match Fs.lookup fs_d ~dir:dst dst_name with
      | Some c when c = m -> err "rename: %S already names the same inode" dst_name
      | Some c ->
          let cst = Fs.stat t.fss.(owner t c) c in
          if mst.Fs.kind <> Fs.File || cst.Fs.kind <> Fs.File then
            err "rename: target %S exists" dst_name;
          Some c
      | None -> None
    in
    if mst.Fs.kind = Fs.Dir then check_no_cycle t ~moved:m ~dst;
    let participants =
      List.sort_uniq compare
        (ps :: pd :: pm
        :: (match clobber with Some c -> [ owner t c ] | None -> []))
    in
    match participants with
    | [ _ ] -> Fs.rename ?on_step fs_s ~src ~src_name ~dst ~dst_name
    | ids ->
        let t0 = Engine.now (Fs.engine fs_s) in
        Shard.with_cross_tx ?on_step:(cross_hook on_step) t.shard ids
          (fun tx_of ->
            (match Fs.dirent_lookup_tx (tx_of ps) fs_s ~dir:src ~name:src_name with
            | Some i when i = m -> ()
            | _ -> err "rename: source entry %S changed underneath" src_name);
            (match Fs.dirent_lookup_tx (tx_of pd) fs_d ~dir:dst ~name:dst_name with
            | c when c = clobber -> ()
            | _ -> err "rename: target entry %S changed underneath" dst_name);
            (match clobber with
            | Some c ->
                ignore
                  (Fs.dirent_remove_tx ?on_step (tx_of pd) fs_d ~dir:dst
                     ~name:dst_name);
                Fs.drop_file_link_tx ?on_step (tx_of (owner t c)) t.fss.(owner t c)
                  ~ino:c
            | None -> ());
            ignore
              (Fs.dirent_remove_tx ?on_step (tx_of ps) fs_s ~dir:src
                 ~name:src_name);
            Fs.dirent_add_tx ?on_step (tx_of pd) fs_d ~dir:dst ~name:dst_name
              ~ino:m;
            step on_step "touch";
            let new_parent =
              if mst.Fs.kind = Fs.Dir then Some dst else None
            in
            Fs.touch_moved_tx (tx_of pm) t.fss.(pm) ~ino:m ~new_parent);
        record fs_s Fs.op_rename ~t0 ~ino:m ~aux:dst
  end
