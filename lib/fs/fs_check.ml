module Engine = Kamino_core.Engine
module Heap = Kamino_heap.Heap
module Btree = Kamino_index.Btree
open Fs.Layout

exception Bad of string

let fail fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt

type inode_info = {
  shard : int;
  ptr : Heap.ptr;
  ikind : int;
  nlink : int;
  isize : int;
  parent : int;
}

(* Claim object [p] for [role] in shard [s]'s accounting table. Claiming
   an object twice is the doubly-referenced failure — and because every
   chain walk claims a node before following its next pointer, it also
   bounds walks over corrupt cyclic chains. *)
let claim s tbl heap p role =
  if p = Heap.null then fail "shard %d: %s is a null pointer" s role;
  if not (Heap.is_allocated heap p) then
    fail "shard %d: %s at %d is not an allocated object" s role p;
  match Hashtbl.find_opt tbl p with
  | Some other -> fail "shard %d: object %d doubly referenced: %s and %s" s p other role
  | None -> Hashtbl.add tbl p role

let fsck_cluster ?(strict_heap = true) fss =
  let n = Array.length fss in
  if n = 0 then invalid_arg "Fs_check.fsck_cluster: no shards";
  let t0s = Array.map (fun fs -> Engine.now (Fs.engine fs)) fss in
  let inodes : (int, inode_info) Hashtbl.t = Hashtbl.create 64 in
  let refs : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let child_parent : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let claimed = Array.map (fun _ -> Hashtbl.create 64) fss in
  let per_shard_inos = Array.make n [] in
  let result =
    try
      (* Pass A: superblocks and inode tables, all shards. *)
      Array.iteri
        (fun s fs ->
          let e = Fs.engine fs in
          let heap = Engine.heap e in
          let sb = Fs.superblock fs in
          let pk p off = Engine.peek_int e p off in
          claim s claimed.(s) heap sb "superblock";
          if pk sb sb_magic <> magic then fail "shard %d: bad superblock magic" s;
          if pk sb sb_version <> version then
            fail "shard %d: superblock version %d" s (pk sb sb_version);
          if pk sb sb_block_size <> Fs.block_size fs then
            fail "shard %d: superblock block_size disagrees with the handle" s;
          if pk sb sb_ino_base <> s || pk sb sb_ino_stride <> n then
            fail "shard %d: ino class (%d,%d), expected (%d,%d)" s
              (pk sb sb_ino_base) (pk sb sb_ino_stride) s n;
          if s > 0 && pk sb sb_root_ino >= 0 then
            fail "shard %d: non-zero shard claims the root" s;
          let itab = Fs.itab fs in
          (match Btree.validate itab with
          | Ok () -> ()
          | Error m -> fail "shard %d: inode table invalid: %s" s m);
          Btree.iter_nodes itab (fun p -> claim s claimed.(s) heap p "itab node");
          let next_ord = pk sb sb_next_ord in
          Btree.iter itab (fun ino ip ->
              claim s claimed.(s) heap ip (Printf.sprintf "inode %d" ino);
              if pk ip i_ino <> ino then
                fail "shard %d: inode %d records ino %d" s ino (pk ip i_ino);
              if ino < 0 || ino mod n <> s then
                fail "shard %d: inode %d is not in this shard's ino class" s ino;
              if ino / n >= next_ord then
                fail "shard %d: inode %d at or past the allocator cursor %d" s ino
                  next_ord;
              let k = pk ip i_kind in
              if k <> kind_file && k <> kind_dir then
                fail "shard %d: inode %d has kind %d" s ino k;
              let nlink = pk ip i_nlink in
              if nlink < 1 then fail "shard %d: inode %d has nlink %d" s ino nlink;
              let isize = pk ip i_size in
              if isize < 0 then fail "shard %d: inode %d has size %d" s ino isize;
              if Hashtbl.mem inodes ino then
                fail "shard %d: ino %d appears twice in the cluster" s ino;
              Hashtbl.add inodes ino
                { shard = s; ptr = ip; ikind = k; nlink; isize; parent = pk ip i_parent };
              per_shard_inos.(s) <- ino :: per_shard_inos.(s)))
        fss;
      (* Pass B: directory indexes, dirent chains, file extents,
         per-shard counters and heap accounting. *)
      Array.iteri
        (fun s fs ->
          let e = Fs.engine fs in
          let heap = Engine.heap e in
          let sb = Fs.superblock fs in
          let bs = Fs.block_size fs in
          let pk p off = Engine.peek_int e p off in
          let ndirs = ref 0 and nblocks = ref 0 and ndata = ref 0 in
          List.iter
            (fun ino ->
              let info = Hashtbl.find inodes ino in
              if info.ikind = kind_dir then begin
                incr ndirs;
                let idx = Btree.attach e (pk info.ptr i_head) in
                (match Btree.validate idx with
                | Ok () -> ()
                | Error m -> fail "shard %d: dir %d index invalid: %s" s ino m);
                Btree.iter_nodes idx (fun p ->
                    claim s claimed.(s) heap p (Printf.sprintf "dir %d index node" ino));
                let names = Hashtbl.create 8 in
                let entries = ref 0 in
                Btree.iter idx (fun key head ->
                    let rec walk p =
                      if p <> Heap.null then begin
                        claim s claimed.(s) heap p
                          (Printf.sprintf "dirent in dir %d" ino);
                        let nlen = pk p d_nlen in
                        if nlen < 1 || nlen > max_name_len then
                          fail "shard %d: dir %d dirent with name length %d" s ino nlen;
                        let name = Engine.peek_string e p d_name nlen in
                        (match Fs.check_name name with
                        | () -> ()
                        | exception Fs.Fs_error m ->
                            fail "shard %d: dir %d: invalid name: %s" s ino m);
                        if Fs.hash_name fs name <> key then
                          fail "shard %d: dir %d: %S chained under key %d, hash %d" s
                            ino name key (Fs.hash_name fs name);
                        if Hashtbl.mem names name then
                          fail "shard %d: dir %d: duplicate entry %S" s ino name;
                        Hashtbl.add names name ();
                        incr entries;
                        let target = pk p d_ino in
                        Hashtbl.replace refs target
                          (1 + Option.value ~default:0 (Hashtbl.find_opt refs target));
                        (match Hashtbl.find_opt inodes target with
                        | None ->
                            fail "shard %d: dir %d: %S references missing ino %d" s
                              ino name target
                        | Some ti ->
                            if ti.ikind = kind_dir then
                              if Hashtbl.mem child_parent target then
                                fail "directory %d referenced from two directories"
                                  target
                              else Hashtbl.add child_parent target ino);
                        walk (pk p d_next)
                      end
                    in
                    walk head);
                if !entries <> info.isize then
                  fail "shard %d: dir %d holds %d entries, inode says %d" s ino
                    !entries info.isize
              end
              else begin
                (* Regular file: exact extent coverage. *)
                let size = info.isize in
                let nb = (size + bs - 1) / bs in
                let nnodes = (nb + ext_slots - 1) / ext_slots in
                ndata := !ndata + size;
                nblocks := !nblocks + nb;
                let head = pk info.ptr i_head in
                if nnodes = 0 then begin
                  if head <> Heap.null then
                    fail "shard %d: empty file %d has an extent chain" s ino
                end
                else begin
                  let node = ref head in
                  let last_blk = ref Heap.null in
                  for ni = 0 to nnodes - 1 do
                    claim s claimed.(s) heap !node
                      (Printf.sprintf "extent node %d of file %d" ni ino);
                    for si = 0 to ext_slots - 1 do
                      let b = (ni * ext_slots) + si in
                      let blk = pk !node (e_slot si) in
                      if b < nb then begin
                        claim s claimed.(s) heap blk
                          (Printf.sprintf "block %d of file %d" b ino);
                        if Heap.capacity heap blk < bs then
                          fail "shard %d: file %d block %d too small" s ino b;
                        if b = nb - 1 then last_blk := blk
                      end
                      else if blk <> Heap.null then
                        fail "shard %d: file %d has a block pointer past EOF (slot %d)"
                          s ino b
                    done;
                    let nxt = pk !node e_next in
                    if ni = nnodes - 1 then begin
                      if nxt <> Heap.null then
                        fail "shard %d: file %d extent chain longer than its size" s ino
                    end
                    else node := nxt
                  done;
                  (* Bytes past EOF in the last block must be zero — the
                     strongest torn-write detector fsck has. *)
                  let tail = size - ((nb - 1) * bs) in
                  let cap = Heap.capacity heap !last_blk in
                  if tail < cap then begin
                    let bytes = Engine.peek_bytes e !last_blk tail (cap - tail) in
                    Bytes.iteri
                      (fun i c ->
                        if c <> '\000' then
                          fail "shard %d: file %d has nonzero byte %d past EOF" s ino
                            (tail + i))
                      bytes
                  end
                end
              end)
            per_shard_inos.(s);
          (* Exact superblock counters. *)
          let ninodes = List.length per_shard_inos.(s) in
          if pk sb sb_inode_count <> ninodes then
            fail "shard %d: superblock says %d inodes, found %d" s
              (pk sb sb_inode_count) ninodes;
          if pk sb sb_dir_count <> !ndirs then
            fail "shard %d: superblock says %d dirs, found %d" s
              (pk sb sb_dir_count) !ndirs;
          if pk sb sb_block_count <> !nblocks then
            fail "shard %d: superblock says %d blocks, found %d" s
              (pk sb sb_block_count) !nblocks;
          if pk sb sb_data_bytes <> !ndata then
            fail "shard %d: superblock says %d data bytes, found %d" s
              (pk sb sb_data_bytes) !ndata;
          if strict_heap then begin
            (match Heap.validate heap with
            | Ok () -> ()
            | Error m -> fail "shard %d: heap invalid: %s" s m);
            Heap.iter_objects heap (fun p ~capacity ~allocated ->
                if allocated && not (Hashtbl.mem claimed.(s) p) then
                  fail "shard %d: orphaned object %d (capacity %d)" s p capacity)
          end)
        fss;
      (* Pass C: global link counts, parents, rooted acyclic tree. *)
      if not (Fs.has_root fss.(0)) then fail "shard 0 has no root directory";
      let root = Fs.root_ino fss.(0) in
      Hashtbl.iter
        (fun ino r ->
          if not (Hashtbl.mem inodes ino) then
            fail "%d dirent(s) reference missing ino %d" r ino)
        refs;
      Hashtbl.iter
        (fun ino info ->
          let r = Option.value ~default:0 (Hashtbl.find_opt refs ino) in
          let expected = info.nlink - if ino = root then 1 else 0 in
          if r <> expected then
            fail "ino %d: nlink %d but %d dirent reference(s)%s" ino info.nlink r
              (if ino = root then " (+1 superblock root)" else "");
          if info.ikind = kind_dir then begin
            if ino = root then begin
              if r <> 0 then fail "root %d has a dirent reference" ino;
              if info.parent <> root then fail "root %d is not its own parent" ino
            end
            else begin
              if r <> 1 then fail "directory %d has %d references" ino r;
              match Hashtbl.find_opt child_parent ino with
              | None -> fail "directory %d unreachable" ino
              | Some p ->
                  if info.parent <> p then
                    fail "directory %d: parent field %d but linked under %d" ino
                      info.parent p
            end
          end)
        inodes;
      (* Every parent chain reaches the root within |dirs| hops. *)
      let ndirs_total = Hashtbl.length child_parent + 1 in
      Hashtbl.iter
        (fun ino info ->
          if info.ikind = kind_dir then begin
            let rec up cur fuel =
              if cur <> root then
                if fuel = 0 then fail "directory %d: parent chain has a cycle" ino
                else
                  match Hashtbl.find_opt inodes cur with
                  | None -> fail "directory %d: parent chain hits missing ino %d" ino cur
                  | Some i -> up i.parent (fuel - 1)
            in
            up ino ndirs_total
          end)
        inodes;
      Ok ()
    with Bad m -> Error m
  in
  Array.iteri
    (fun s fs -> Fs.record_op fs ~op:Fs.op_fsck ~t0:t0s.(s) ~ino:(-1) ~aux:n)
    fss;
  result

let fsck ?strict_heap fs = fsck_cluster ?strict_heap [| fs |]
