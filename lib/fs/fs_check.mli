(** The fsck invariant oracle.

    Re-derives every filesystem invariant from the committed heap state,
    independently of {!Fs}'s own accessors (its walks are written
    against {!Fs.Layout} directly, so a bug in the operational code
    cannot hide itself from the check). Run after every schedule of the
    fs crash-matrix dimension: crash at step [k], recover, [fsck].

    Checked invariants:

    - superblock magic/version/geometry, and {e exact} counters: inode,
      directory and data-block counts and total file bytes all equal
      the recomputed sums; every allocated ino's ordinal is below the
      allocator cursor;
    - the inode table and every directory index pass
      {!Kamino_index.Btree.validate};
    - every dirent's name is valid and hashes to the B+Tree key it is
      chained under; names are unique within a directory; entry counts
      match;
    - link counts equal dirent references exactly (plus one superblock
      reference for the root); directories have exactly one reference
      (the root none) and their parent pointers match the referencing
      directory; every parent chain reaches a root — so the namespace
      is one acyclic rooted tree;
    - every file's extent chain covers exactly [ceil(size/block_size)]
      blocks — no orphaned or doubly-referenced blocks or chain nodes,
      slots past EOF null, and every byte past EOF in the last block
      zero (a torn in-place write that recovery failed to roll back
      shows up here);
    - with [strict_heap] (default true), whole-heap accounting: the set
      of objects the filesystem explains (superblock, B+Tree nodes,
      inodes, dirents, extent nodes, data blocks) is {e exactly} the
      heap's allocated-object set, and the heap's own structural
      validation passes — nothing leaked, nothing lost. *)

val fsck : ?strict_heap:bool -> Fs.t -> (unit, string) result
(** Single filesystem ([fsck_cluster] over one shard). Emits an
    [op_fsck] span and feeds [fs.op_ns.fsck]. *)

val fsck_cluster : ?strict_heap:bool -> Fs.t array -> (unit, string) result
(** The sharded façade's oracle: per-shard checks on every shard plus
    the cross-shard ones — shard [i] of [n] must own ino congruence
    class [(i, n)], dirents may reference inodes on any shard, link
    counts and parent chains are checked globally, and exactly shard 0
    carries the root. *)
