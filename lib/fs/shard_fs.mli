(** Inode-number-routed sharded filesystem façade.

    One namespace over [n] independent shards ({!Kamino_shard.Shard}):
    shard [i] formats its filesystem with ino class [(base = i,
    stride = n)], so [owner ino = ino mod n] and every shard's inode
    allocator only ever issues inos it owns — the {!Shard_kv}-style
    routing rule, adapted because fs object placement follows the inode,
    not a client key. Directories (index + dirents) live with the
    directory's inode; file extents live with the file's inode; shard 0
    carries the root.

    A new inode's shard is chosen deterministically from the parent ino
    and the name hash, so namespaces spread without any volatile
    placement state.

    Operations that touch a single shard run as plain single-shard
    transactions; operations whose objects span shards (create/mkdir
    placing the child elsewhere, unlink/rmdir of a foreign inode,
    rename across directories, link) run under
    {!Kamino_shard.Shard.with_cross_tx} — ordered acquisition, 2PC
    against the persistent commit marker — so every fs operation is
    all-or-nothing across shards at every crash point. Only the Kamino
    engine kinds support cross-shard commit.

    [on_step] fires the filesystem-level mutation labels first
    (["mknod"], ["dirent-add"], ...) and then the 2PC protocol
    positions (["prepare:<shard>"], ["marker"], ["commit:<shard>"],
    ["clear"]) — the crash-injection surface of the sharded fs crash
    tests: the marker step is the commit point, before it a crash must
    roll every shard back, from it on every shard rolls forward. *)

module Engine = Kamino_core.Engine
module Shard = Kamino_shard.Shard

type t

val create :
  ?config:Engine.config ->
  ?obs:Kamino_obs.Obs.t ->
  ?obs_track_base:int ->
  ?block_size:int ->
  ?dir_hash_bits:int ->
  kind:Engine.kind ->
  seed:int ->
  shards:int ->
  unit ->
  t
(** Build the shard set and format every shard's filesystem (root on
    shard 0). Shard [i]'s fs spans emit on track
    [obs_track_base + 4i + 3] (the slot the shard façade leaves free),
    named ["shard<i>.fs"]. *)

val shard : t -> Shard.t
val shards : t -> int
val fs : t -> int -> Fs.t
val fss : t -> Fs.t array
(** All shards' filesystems, indexed by shard — what
    {!Fs_check.fsck_cluster} takes. *)

val owner : t -> int -> int
(** [owner t ino = ino mod shards]. *)

val root_ino : t -> int

val crash : t -> unit
val recover : t -> unit
(** {!Shard.recover}: a durable commit marker promotes its cross-shard
    participants, so half-finished fs operations roll forward on every
    shard or back on every shard. Handles stay valid. *)

val drain_backups : t -> unit

(** {1 Operations} — same contracts as the {!Fs} equivalents. *)

val create_file : ?on_step:(string -> unit) -> t -> dir:int -> string -> int
val mkdir : ?on_step:(string -> unit) -> t -> dir:int -> string -> int
val link : ?on_step:(string -> unit) -> t -> ino:int -> dir:int -> string -> unit
val unlink : ?on_step:(string -> unit) -> t -> dir:int -> string -> unit
val rmdir : ?on_step:(string -> unit) -> t -> dir:int -> string -> unit

val rename :
  ?on_step:(string -> unit) ->
  t ->
  src:int ->
  src_name:string ->
  dst:int ->
  dst_name:string ->
  unit

val write : ?on_step:(string -> unit) -> t -> ino:int -> off:int -> string -> unit
val truncate : ?on_step:(string -> unit) -> t -> ino:int -> len:int -> unit
val read : t -> ino:int -> off:int -> len:int -> string
val readdir : t -> dir:int -> (string * int) list
val lookup : t -> dir:int -> string -> int option
val resolve : t -> string -> int option
val stat : t -> int -> Fs.stat
