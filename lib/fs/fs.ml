module Engine = Kamino_core.Engine
module Heap = Kamino_heap.Heap
module Btree = Kamino_index.Btree
module Obs = Kamino_obs.Obs
module Metrics = Kamino_obs.Metrics

exception Fs_error of string

let err fmt = Printf.ksprintf (fun s -> raise (Fs_error s)) fmt

module Layout = struct
  (* Superblock: anchored at the heap root. *)
  let sb_magic = 0
  let sb_version = 8
  let sb_itab = 16
  let sb_next_ord = 24
  let sb_ino_base = 32
  let sb_ino_stride = 40
  let sb_root_ino = 48
  let sb_inode_count = 56
  let sb_dir_count = 64
  let sb_block_count = 72
  let sb_data_bytes = 80
  let sb_block_size = 88
  let sb_hash_bits = 96
  let sb_size = 104
  let magic = 0x4b46_534d (* "KFSM" *)
  let version = 1

  (* Inode. *)
  let i_ino = 0
  let i_kind = 8
  let i_nlink = 16
  let i_size = 24
  let i_parent = 32
  let i_gen = 40
  let i_head = 48
  let inode_size = 56
  let kind_file = 1
  let kind_dir = 2

  (* Dirent: collision-chained under one hash key. *)
  let d_next = 0
  let d_ino = 8
  let d_nlen = 16
  let d_name = 24
  let max_name_len = 40
  let dirent_size = 64

  (* Extent-chain node: [ext_slots] data-block pointers. *)
  let e_next = 0
  let e_slot i = 8 + (i * 8)
  let ext_slots = 30
  let ext_size = 8 + (ext_slots * 8)

  let itab_node_size = 512
  let dir_node_size = 256
end

open Layout

type t = {
  engine : Engine.t;
  sb : Heap.ptr;
  itab : Btree.t;
  block_size : int;
  hash_mask : int;
  base : int;
  stride : int;
  obs_track : int;
  hists : Metrics.hist array;
  c_blocks : Metrics.counter;
  c_extnodes : Metrics.counter;
}

type kind = File | Dir

type stat = {
  ino : int;
  kind : kind;
  nlink : int;
  size : int;
  parent : int;
  gen : int;
}

(* --- Opcodes (obs span payloads, histogram names) ------------------------ *)

let op_create = 0
let op_mkdir = 1
let op_write = 2
let op_read = 3
let op_readdir = 4
let op_rename = 5
let op_unlink = 6
let op_truncate = 7
let op_link = 8
let op_rmdir = 9
let op_fsck = 10

let op_names =
  [|
    "create"; "mkdir"; "write"; "read"; "readdir"; "rename"; "unlink";
    "truncate"; "link"; "rmdir"; "fsck";
  |]

let op_name op = if op >= 0 && op < Array.length op_names then op_names.(op) else "?"

(* --- Names ---------------------------------------------------------------- *)

let check_name name =
  let n = String.length name in
  if n = 0 || n > max_name_len then
    err "Fs: name length %d out of range 1..%d" n max_name_len;
  if name = "." || name = ".." then err "Fs: %S is reserved" name;
  String.iter
    (fun c -> if c = '/' || c = '\000' then err "Fs: name %S has a '/' or NUL" name)
    name

(* Deterministic djb2-xs hash, kept in 62 nonnegative bits (the FNV
   basis does not fit OCaml's native int). *)
let name_hash_raw name =
  let h = ref 5381 in
  String.iter (fun c -> h := (((!h lsl 5) + !h) + Char.code c) land max_int) name;
  (!h lxor (!h lsr 31)) land max_int

let hash_name t name = name_hash_raw name land t.hash_mask

let step on_step label = match on_step with Some f -> f label | None -> ()

(* --- Lifecycle ------------------------------------------------------------ *)

let make_metric_handles engine =
  let reg = Engine.registry engine in
  ( Array.map (fun n -> Metrics.hist reg ("fs.op_ns." ^ n)) op_names,
    Metrics.counter reg "fs.blocks_allocated",
    Metrics.counter reg "fs.extent_nodes_allocated" )

let kind_code = function File -> kind_file | Dir -> kind_dir

(* [format] creates the root directory through this inside the
   formatting transaction. *)
let mknod_tx tx t kind ~parent =
  Engine.add tx t.sb;
  let ord = Engine.read_int tx t.sb sb_next_ord in
  Engine.write_int tx t.sb sb_next_ord (ord + 1);
  let ino = t.base + (ord * t.stride) in
  let ip = Engine.alloc tx inode_size in
  Engine.write_int tx ip i_ino ino;
  Engine.write_int tx ip i_kind (kind_code kind);
  Engine.write_int tx ip i_nlink 1;
  Engine.write_int tx ip i_size 0;
  Engine.write_int tx ip i_gen 0;
  (match kind with
  | File ->
      Engine.write_int tx ip i_parent (-1);
      Engine.write_int tx ip i_head Heap.null
  | Dir ->
      Engine.write_int tx ip i_parent parent;
      let idx = Btree.create tx ~node_size:dir_node_size in
      Engine.write_int tx ip i_head (Btree.descriptor idx));
  ignore (Btree.insert tx t.itab ino ip);
  Engine.write_int tx t.sb sb_inode_count (Engine.read_int tx t.sb sb_inode_count + 1);
  if kind = Dir then
    Engine.write_int tx t.sb sb_dir_count (Engine.read_int tx t.sb sb_dir_count + 1);
  ino

let format ?(block_size = 512) ?(dir_hash_bits = 40) ?(ino_base = 0)
    ?(ino_stride = 1) ?(with_root = true) ?(obs_track = 4) engine =
  if block_size < 8 || block_size mod 8 <> 0 || block_size > Heap.max_object_size
  then invalid_arg "Fs.format: bad block_size";
  if dir_hash_bits < 1 || dir_hash_bits > 61 then
    invalid_arg "Fs.format: dir_hash_bits out of range";
  if ino_stride < 1 || ino_base < 0 || ino_base >= ino_stride then
    invalid_arg "Fs.format: need 0 <= ino_base < ino_stride";
  if Engine.root engine <> Heap.null then
    err "Fs.format: heap already has a root";
  let hists, c_blocks, c_extnodes = make_metric_handles engine in
  let t =
    Engine.with_tx engine (fun tx ->
        let itab = Btree.create tx ~node_size:itab_node_size in
        let sb = Engine.alloc tx sb_size in
        Engine.write_int tx sb sb_magic magic;
        Engine.write_int tx sb sb_version version;
        Engine.write_int tx sb sb_itab (Btree.descriptor itab);
        Engine.write_int tx sb sb_next_ord 0;
        Engine.write_int tx sb sb_ino_base ino_base;
        Engine.write_int tx sb sb_ino_stride ino_stride;
        Engine.write_int tx sb sb_root_ino (-1);
        Engine.write_int tx sb sb_inode_count 0;
        Engine.write_int tx sb sb_dir_count 0;
        Engine.write_int tx sb sb_block_count 0;
        Engine.write_int tx sb sb_data_bytes 0;
        Engine.write_int tx sb sb_block_size block_size;
        Engine.write_int tx sb sb_hash_bits dir_hash_bits;
        Engine.set_root tx sb;
        let t =
          {
            engine;
            sb;
            itab;
            block_size;
            hash_mask = (1 lsl dir_hash_bits) - 1;
            base = ino_base;
            stride = ino_stride;
            obs_track;
            hists;
            c_blocks;
            c_extnodes;
          }
        in
        if with_root then begin
          (* First ordinal, so the root's ino is the base — its own
             parent, link count 1 for the superblock reference. *)
          let rino = mknod_tx tx t Dir ~parent:ino_base in
          Engine.write_int tx sb sb_root_ino rino
        end;
        t)
  in
  let obs = Engine.obs engine in
  if Obs.enabled obs then Obs.name_track obs obs_track "fs.ops";
  t

let attach ?(obs_track = 4) engine =
  let sb = Engine.root engine in
  if sb = Heap.null then err "Fs.attach: heap has no root";
  if Engine.peek_int engine sb sb_magic <> magic then
    err "Fs.attach: root object is not a superblock";
  let hists, c_blocks, c_extnodes = make_metric_handles engine in
  let hash_bits = Engine.peek_int engine sb sb_hash_bits in
  let t =
    {
      engine;
      sb;
      itab = Btree.attach engine (Engine.peek_int engine sb sb_itab);
      block_size = Engine.peek_int engine sb sb_block_size;
      hash_mask = (1 lsl hash_bits) - 1;
      base = Engine.peek_int engine sb sb_ino_base;
      stride = Engine.peek_int engine sb sb_ino_stride;
      obs_track;
      hists;
      c_blocks;
      c_extnodes;
    }
  in
  let obs = Engine.obs engine in
  if Obs.enabled obs then Obs.name_track obs obs_track "fs.ops";
  t

let engine t = t.engine
let block_size t = t.block_size
let superblock t = t.sb
let itab t = t.itab
let hash_mask t = t.hash_mask
let ino_base t = t.base
let ino_stride t = t.stride
let has_root t = Engine.peek_int t.engine t.sb sb_root_ino >= 0

let root_ino t =
  let r = Engine.peek_int t.engine t.sb sb_root_ino in
  if r < 0 then err "Fs.root_ino: filesystem has no root directory";
  r

(* --- Inode access --------------------------------------------------------- *)

let inode_ptr t ino = Btree.find t.itab ino

let inode_ptr_tx tx t ino =
  match Btree.find_tx tx t.itab ino with
  | Some p -> p
  | None -> err "Fs: no inode %d" ino

let stat_of_reads ino kind nlink size parent gen =
  { ino; kind = (if kind = kind_dir then Dir else File); nlink; size; parent; gen }

let stat_tx tx t ino =
  let ip = inode_ptr_tx tx t ino in
  stat_of_reads ino
    (Engine.read_int tx ip i_kind)
    (Engine.read_int tx ip i_nlink)
    (Engine.read_int tx ip i_size)
    (Engine.read_int tx ip i_parent)
    (Engine.read_int tx ip i_gen)

let stat t ino =
  match inode_ptr t ino with
  | None -> err "Fs: no inode %d" ino
  | Some ip ->
      let e = t.engine in
      stat_of_reads ino (Engine.peek_int e ip i_kind)
        (Engine.peek_int e ip i_nlink)
        (Engine.peek_int e ip i_size)
        (Engine.peek_int e ip i_parent)
        (Engine.peek_int e ip i_gen)

let dir_of_tx tx t dir =
  let ip = inode_ptr_tx tx t dir in
  if Engine.read_int tx ip i_kind <> kind_dir then
    err "Fs: ino %d is not a directory" dir;
  (ip, Btree.attach t.engine (Engine.read_int tx ip i_head))

(* --- Dirent chains -------------------------------------------------------- *)

let find_dirent tx idx key name =
  match Btree.find_tx tx idx key with
  | None -> None
  | Some head ->
      let nlen_want = String.length name in
      let rec go prev p =
        if p = Heap.null then None
        else
          let nlen = Engine.read_int tx p d_nlen in
          if nlen = nlen_want && Engine.read_string tx p d_name nlen = name then
            Some (prev, p)
          else go (Some p) (Engine.read_int tx p d_next)
      in
      go None head

let dirent_lookup_tx tx t ~dir ~name =
  let _, idx = dir_of_tx tx t dir in
  match find_dirent tx idx (hash_name t name) name with
  | Some (_, de) -> Some (Engine.read_int tx de d_ino)
  | None -> None

let dirent_add_tx ?on_step tx t ~dir ~name ~ino =
  check_name name;
  step on_step "dirent-add";
  let dp, idx = dir_of_tx tx t dir in
  let key = hash_name t name in
  let head =
    match Btree.find_tx tx idx key with Some h -> h | None -> Heap.null
  in
  let de = Engine.alloc tx dirent_size in
  Engine.write_int tx de d_next head;
  Engine.write_int tx de d_ino ino;
  Engine.write_int tx de d_nlen (String.length name);
  Engine.write_string tx de d_name name;
  ignore (Btree.insert tx idx key de);
  Engine.add tx dp;
  Engine.write_int tx dp i_size (Engine.read_int tx dp i_size + 1)

let dirent_remove_tx ?on_step tx t ~dir ~name =
  check_name name;
  step on_step "dirent-remove";
  let dp, idx = dir_of_tx tx t dir in
  let key = hash_name t name in
  match find_dirent tx idx key name with
  | None -> err "Fs: %s: no such entry" name
  | Some (prev, de) ->
      let nxt = Engine.read_int tx de d_next in
      (match prev with
      | None ->
          if nxt = Heap.null then ignore (Btree.delete tx idx key)
          else ignore (Btree.insert tx idx key nxt)
      | Some p ->
          Engine.add_field tx p d_next 8;
          Engine.write_int tx p d_next nxt);
      let ino = Engine.read_int tx de d_ino in
      Engine.free tx de;
      Engine.add tx dp;
      Engine.write_int tx dp i_size (Engine.read_int tx dp i_size - 1);
      ino

(* --- File extents --------------------------------------------------------- *)

let blocks_for t size = (size + t.block_size - 1) / t.block_size
let nodes_for nb = (nb + ext_slots - 1) / ext_slots

let rec node_at tx p n =
  if n = 0 then p else node_at tx (Engine.read_int tx p e_next) (n - 1)

(* Visit blocks [from_b..to_b] with a single chain walk. *)
let block_iter tx head ~from_b ~to_b f =
  if to_b >= from_b then begin
    let ni0 = from_b / ext_slots in
    let node = ref (node_at tx head ni0) in
    let ni = ref ni0 in
    for b = from_b to to_b do
      let n = b / ext_slots in
      if n > !ni then begin
        node := Engine.read_int tx !node e_next;
        ni := n
      end;
      f b (Engine.read_int tx !node (e_slot (b mod ext_slots)))
    done
  end

let sb_add_int tx t field delta =
  Engine.add tx t.sb;
  Engine.write_int tx t.sb field (Engine.read_int tx t.sb field + delta)

(* Append zeroed blocks (and chain nodes) to reach [new_size]. Freshly
   allocated objects are already intent-covered; only writes into the
   pre-existing tail node need field declares. *)
let grow_file_tx ?on_step tx t ip ~old_size ~new_size =
  let old_nb = blocks_for t old_size and new_nb = blocks_for t new_size in
  if new_nb > old_nb then begin
    step on_step "extend";
    let head = Engine.read_int tx ip i_head in
    let cur = ref Heap.null and curidx = ref (-1) and cur_fresh = ref false in
    if old_nb > 0 then begin
      curidx := (old_nb - 1) / ext_slots;
      cur := node_at tx head !curidx
    end;
    for b = old_nb to new_nb - 1 do
      let ni = b / ext_slots in
      if ni > !curidx then begin
        let n = Engine.alloc tx ext_size in
        (if !cur = Heap.null then begin
           Engine.add tx ip;
           Engine.write_int tx ip i_head n
         end
         else begin
           if not !cur_fresh then Engine.add_field tx !cur e_next 8;
           Engine.write_int tx !cur e_next n
         end);
        Metrics.incr t.c_extnodes;
        cur := n;
        curidx := ni;
        cur_fresh := true
      end;
      let blk = Engine.alloc tx t.block_size in
      if not !cur_fresh then Engine.add_field tx !cur (e_slot (b mod ext_slots)) 8;
      Engine.write_int tx !cur (e_slot (b mod ext_slots)) blk;
      Metrics.incr t.c_blocks
    done
  end;
  (old_nb, new_nb)

(* Shrink to [new_size]: re-zero the kept tail, null freed slots in kept
   nodes, free dropped blocks, cut the chain and free trailing nodes. *)
let shrink_file_tx ?on_step tx t ip ~old_size ~new_size =
  let old_nb = blocks_for t old_size and new_nb = blocks_for t new_size in
  let head = Engine.read_int tx ip i_head in
  step on_step "zero-tail";
  let tail = new_size mod t.block_size in
  if tail <> 0 then
    block_iter tx head ~from_b:(new_nb - 1) ~to_b:(new_nb - 1) (fun _ blk ->
        Engine.add_field tx blk tail (t.block_size - tail);
        Engine.write_string tx blk tail (String.make (t.block_size - tail) '\000'));
  let keep_nodes = nodes_for new_nb and total_nodes = nodes_for old_nb in
  (* Snapshot the chain before any frees. *)
  let nodes = Array.make total_nodes Heap.null in
  let p = ref head in
  for i = 0 to total_nodes - 1 do
    nodes.(i) <- !p;
    p := Engine.read_int tx !p e_next
  done;
  step on_step "free-blocks";
  if old_nb > new_nb then
    block_iter tx head ~from_b:new_nb ~to_b:(old_nb - 1) (fun b blk ->
        let ni = b / ext_slots in
        if ni < keep_nodes then begin
          Engine.add_field tx nodes.(ni) (e_slot (b mod ext_slots)) 8;
          Engine.write_int tx nodes.(ni) (e_slot (b mod ext_slots)) Heap.null
        end;
        Engine.free tx blk);
  step on_step "free-nodes";
  if total_nodes > keep_nodes then begin
    (if keep_nodes = 0 then begin
       Engine.add tx ip;
       Engine.write_int tx ip i_head Heap.null
     end
     else begin
       Engine.add_field tx nodes.(keep_nodes - 1) e_next 8;
       Engine.write_int tx nodes.(keep_nodes - 1) e_next Heap.null
     end);
    for i = keep_nodes to total_nodes - 1 do
      Engine.free tx nodes.(i)
    done
  end;
  (old_nb, new_nb)

let free_file_tx tx t ~ino ip =
  let size = Engine.read_int tx ip i_size in
  let nb = blocks_for t size in
  let head = Engine.read_int tx ip i_head in
  block_iter tx head ~from_b:0 ~to_b:(nb - 1) (fun _ blk -> Engine.free tx blk);
  let total_nodes = nodes_for nb in
  let p = ref head in
  for _ = 1 to total_nodes do
    let nxt = Engine.read_int tx !p e_next in
    Engine.free tx !p;
    p := nxt
  done;
  Engine.free tx ip;
  ignore (Btree.delete tx t.itab ino);
  sb_add_int tx t sb_inode_count (-1);
  sb_add_int tx t sb_block_count (-nb);
  sb_add_int tx t sb_data_bytes (-size)

(* --- Inode-side primitives ------------------------------------------------ *)

let add_link_tx tx t ~ino =
  let ip = inode_ptr_tx tx t ino in
  if Engine.read_int tx ip i_kind <> kind_file then
    err "Fs.link: ino %d is not a regular file" ino;
  Engine.add tx ip;
  Engine.write_int tx ip i_nlink (Engine.read_int tx ip i_nlink + 1)

let drop_file_link_tx ?on_step tx t ~ino =
  let ip = inode_ptr_tx tx t ino in
  if Engine.read_int tx ip i_kind <> kind_file then
    err "Fs: ino %d is not a regular file" ino;
  step on_step "drop-link";
  let nlink = Engine.read_int tx ip i_nlink in
  if nlink > 1 then begin
    Engine.add tx ip;
    Engine.write_int tx ip i_nlink (nlink - 1)
  end
  else begin
    step on_step "free-file";
    free_file_tx tx t ~ino ip
  end

let free_dir_tx tx t ~ino =
  let ip = inode_ptr_tx tx t ino in
  if Engine.read_int tx ip i_kind <> kind_dir then
    err "Fs: ino %d is not a directory" ino;
  if Engine.read_int tx ip i_size <> 0 then err "Fs: directory %d not empty" ino;
  let idx = Btree.attach t.engine (Engine.read_int tx ip i_head) in
  Btree.destroy_empty tx idx;
  Engine.free tx ip;
  ignore (Btree.delete tx t.itab ino);
  sb_add_int tx t sb_inode_count (-1);
  sb_add_int tx t sb_dir_count (-1)

let touch_moved_tx tx t ~ino ~new_parent =
  let ip = inode_ptr_tx tx t ino in
  Engine.add tx ip;
  Engine.write_int tx ip i_gen (Engine.read_int tx ip i_gen + 1);
  match new_parent with
  | Some p -> Engine.write_int tx ip i_parent p
  | None -> ()

(* --- Composite operations ------------------------------------------------- *)

let create_tx ?on_step tx t ~dir name =
  check_name name;
  if dirent_lookup_tx tx t ~dir ~name <> None then err "Fs.create: %s exists" name;
  step on_step "mknod";
  let ino = mknod_tx tx t File ~parent:(-1) in
  dirent_add_tx ?on_step tx t ~dir ~name ~ino;
  ino

let mkdir_tx ?on_step tx t ~dir name =
  check_name name;
  if dirent_lookup_tx tx t ~dir ~name <> None then err "Fs.mkdir: %s exists" name;
  step on_step "mknod";
  let ino = mknod_tx tx t Dir ~parent:dir in
  dirent_add_tx ?on_step tx t ~dir ~name ~ino;
  ino

let link_tx ?on_step tx t ~ino ~dir name =
  check_name name;
  if dirent_lookup_tx tx t ~dir ~name <> None then err "Fs.link: %s exists" name;
  step on_step "nlink";
  add_link_tx tx t ~ino;
  dirent_add_tx ?on_step tx t ~dir ~name ~ino

let unlink_tx ?on_step tx t ~dir name =
  (match dirent_lookup_tx tx t ~dir ~name with
  | None -> err "Fs.unlink: %s: no such entry" name
  | Some ino ->
      if (stat_tx tx t ino).kind <> File then
        err "Fs.unlink: %s is a directory (use rmdir)" name);
  let ino = dirent_remove_tx ?on_step tx t ~dir ~name in
  drop_file_link_tx ?on_step tx t ~ino

let rmdir_tx ?on_step tx t ~dir name =
  (match dirent_lookup_tx tx t ~dir ~name with
  | None -> err "Fs.rmdir: %s: no such entry" name
  | Some ino ->
      let st = stat_tx tx t ino in
      if st.kind <> Dir then err "Fs.rmdir: %s is not a directory" name;
      if st.size <> 0 then err "Fs.rmdir: %s not empty" name);
  let ino = dirent_remove_tx ?on_step tx t ~dir ~name in
  free_dir_tx tx t ~ino

(* Walk [cur]'s parent chain; [Fs_error] if it passes through [m]. *)
let check_no_cycle tx t ~moved:m ~dst =
  let rec up cur fuel =
    if cur = m then err "Fs.rename: would create a cycle";
    if fuel = 0 then err "Fs.rename: parent chain does not reach a root";
    let cp = inode_ptr_tx tx t cur in
    let parent = Engine.read_int tx cp i_parent in
    if parent <> cur then up parent (fuel - 1)
  in
  up dst 1_000_000

let rename_tx ?on_step tx t ~src ~src_name ~dst ~dst_name =
  check_name src_name;
  check_name dst_name;
  if src = dst && src_name = dst_name then ()
  else begin
    let _, sidx = dir_of_tx tx t src in
    ignore (dir_of_tx tx t dst);
    let m =
      match find_dirent tx sidx (hash_name t src_name) src_name with
      | Some (_, de) -> Engine.read_int tx de d_ino
      | None -> err "Fs.rename: %s: no such entry" src_name
    in
    let mkind = (stat_tx tx t m).kind in
    if mkind = Dir then check_no_cycle tx t ~moved:m ~dst;
    (match dirent_lookup_tx tx t ~dir:dst ~name:dst_name with
    | Some c when c = m ->
        (* Two links to the same inode: clobbering would drop the moved
           inode's own link (possibly freeing it) before re-linking. *)
        err "Fs.rename: %s already names the same inode" dst_name
    | Some c ->
        if (stat_tx tx t c).kind <> File then
          err "Fs.rename: %s exists and is a directory" dst_name;
        if mkind <> File then
          err "Fs.rename: cannot replace %s with a directory" dst_name;
        ignore (dirent_remove_tx ?on_step tx t ~dir:dst ~name:dst_name);
        drop_file_link_tx ?on_step tx t ~ino:c
    | None -> ());
    ignore (dirent_remove_tx ?on_step tx t ~dir:src ~name:src_name);
    dirent_add_tx ?on_step tx t ~dir:dst ~name:dst_name ~ino:m;
    step on_step "touch";
    touch_moved_tx tx t ~ino:m
      ~new_parent:(if mkind = Dir then Some dst else None)
  end

let write_tx ?on_step tx t ~ino ~off data =
  if off < 0 then err "Fs.write: negative offset";
  let ip = inode_ptr_tx tx t ino in
  if Engine.read_int tx ip i_kind <> kind_file then
    err "Fs.write: ino %d is not a file" ino;
  let len = String.length data in
  if len > 0 then begin
    Engine.add tx ip;
    let old_size = Engine.read_int tx ip i_size in
    let new_size = max old_size (off + len) in
    let old_nb, new_nb = grow_file_tx ?on_step tx t ip ~old_size ~new_size in
    step on_step "data";
    let head = Engine.read_int tx ip i_head in
    block_iter tx head ~from_b:(off / t.block_size)
      ~to_b:((off + len - 1) / t.block_size) (fun b blk ->
        let blo = b * t.block_size in
        let lo = max off blo and hi = min (off + len) (blo + t.block_size) in
        if b < old_nb then Engine.add_field tx blk (lo - blo) (hi - lo);
        Engine.write_string tx blk (lo - blo) (String.sub data (lo - off) (hi - lo)));
    step on_step "meta";
    if new_size > old_size then begin
      Engine.write_int tx ip i_size new_size;
      sb_add_int tx t sb_data_bytes (new_size - old_size);
      sb_add_int tx t sb_block_count (new_nb - old_nb)
    end
  end

let truncate_tx ?on_step tx t ~ino ~len =
  if len < 0 then err "Fs.truncate: negative length";
  let ip = inode_ptr_tx tx t ino in
  if Engine.read_int tx ip i_kind <> kind_file then
    err "Fs.truncate: ino %d is not a file" ino;
  let old_size = Engine.read_int tx ip i_size in
  if len <> old_size then begin
    Engine.add tx ip;
    let old_nb, new_nb =
      if len > old_size then grow_file_tx ?on_step tx t ip ~old_size ~new_size:len
      else shrink_file_tx ?on_step tx t ip ~old_size ~new_size:len
    in
    step on_step "meta";
    Engine.write_int tx ip i_size len;
    sb_add_int tx t sb_data_bytes (len - old_size);
    sb_add_int tx t sb_block_count (new_nb - old_nb)
  end

let read_op_tx tx t ~ino ~off ~len =
  if off < 0 || len < 0 then err "Fs.read: negative offset/length";
  let ip = inode_ptr_tx tx t ino in
  if Engine.read_int tx ip i_kind <> kind_file then
    err "Fs.read: ino %d is not a file" ino;
  Engine.read_lock tx ip;
  let size = Engine.read_int tx ip i_size in
  let off = min off size in
  let len = min len (size - off) in
  if len <= 0 then ""
  else begin
    let head = Engine.read_int tx ip i_head in
    let buf = Buffer.create len in
    block_iter tx head ~from_b:(off / t.block_size)
      ~to_b:((off + len - 1) / t.block_size) (fun b blk ->
        let blo = b * t.block_size in
        let lo = max off blo and hi = min (off + len) (blo + t.block_size) in
        Buffer.add_bytes buf (Engine.read_bytes tx blk (lo - blo) (hi - lo)));
    Buffer.contents buf
  end

let readdir_tx tx t ~dir =
  let _, idx = dir_of_tx tx t dir in
  Btree.fold_range_tx tx idx ~lo:0 ~hi:max_int ~init:[] ~f:(fun acc _key head ->
      let rec go p acc =
        if p = Heap.null then acc
        else
          let nlen = Engine.read_int tx p d_nlen in
          let name = Engine.read_string tx p d_name nlen in
          go (Engine.read_int tx p d_next)
            ((name, Engine.read_int tx p d_ino) :: acc)
      in
      go head acc)
  |> List.rev

(* --- Public wrappers: one transaction + one obs span per call ------------- *)

let record_op t ~op ~t0 ~ino ~aux =
  let dur = Engine.now t.engine - t0 in
  Metrics.observe t.hists.(op) dur;
  let obs = Engine.obs t.engine in
  if Obs.enabled obs then
    Obs.emit obs ~kind:Obs.k_fs_op ~track:t.obs_track ~ts:t0 ~dur ~a:op ~b:ino
      ~c:aux

(* Not [Engine.with_tx]: a semantic [Fs_error] raised mid-validation must
   surface even on engines whose [abort] raises (No_logging), and a
   crash-injection hook that crashed the engine leaves a finished
   transaction behind ([abort] then raises [Tx_finished]). *)
let op_span t op f =
  let t0 = Engine.now t.engine in
  let tx = Engine.begin_tx t.engine in
  match f tx with
  | r, ino, aux ->
      Engine.commit tx;
      record_op t ~op ~t0 ~ino ~aux;
      r
  | exception exn ->
      (try Engine.abort tx with Engine.Error _ -> ());
      raise exn

let create ?on_step t ~dir name =
  op_span t op_create (fun tx ->
      let ino = create_tx ?on_step tx t ~dir name in
      (ino, ino, dir))

let mkdir ?on_step t ~dir name =
  op_span t op_mkdir (fun tx ->
      let ino = mkdir_tx ?on_step tx t ~dir name in
      (ino, ino, dir))

let write ?on_step t ~ino ~off data =
  op_span t op_write (fun tx ->
      write_tx ?on_step tx t ~ino ~off data;
      ((), ino, String.length data))

let read t ~ino ~off ~len =
  op_span t op_read (fun tx ->
      let s = read_op_tx tx t ~ino ~off ~len in
      (s, ino, String.length s))

let readdir t ~dir =
  op_span t op_readdir (fun tx ->
      let es = readdir_tx tx t ~dir in
      (es, dir, List.length es))

let rename ?on_step t ~src ~src_name ~dst ~dst_name =
  op_span t op_rename (fun tx ->
      rename_tx ?on_step tx t ~src ~src_name ~dst ~dst_name;
      ((), src, dst))

let link ?on_step t ~ino ~dir name =
  op_span t op_link (fun tx ->
      link_tx ?on_step tx t ~ino ~dir name;
      ((), ino, dir))

let unlink ?on_step t ~dir name =
  op_span t op_unlink (fun tx ->
      unlink_tx ?on_step tx t ~dir name;
      ((), dir, 0))

let rmdir ?on_step t ~dir name =
  op_span t op_rmdir (fun tx ->
      rmdir_tx ?on_step tx t ~dir name;
      ((), dir, 0))

let truncate ?on_step t ~ino ~len =
  op_span t op_truncate (fun tx ->
      truncate_tx ?on_step tx t ~ino ~len;
      ((), ino, len))

(* --- Committed-state conveniences ----------------------------------------- *)

let lookup t ~dir name =
  match inode_ptr t dir with
  | None -> None
  | Some dp when Engine.peek_int t.engine dp i_kind <> kind_dir -> None
  | Some dp -> (
      let e = t.engine in
      let idx = Btree.attach e (Engine.peek_int e dp i_head) in
      match Btree.find idx (hash_name t name) with
      | None -> None
      | Some head ->
          let nlen_want = String.length name in
          let rec go p =
            if p = Heap.null then None
            else
              let nlen = Engine.peek_int e p d_nlen in
              if nlen = nlen_want && Engine.peek_string e p d_name nlen = name
              then Some (Engine.peek_int e p d_ino)
              else go (Engine.peek_int e p d_next)
          in
          go head)

let resolve t path =
  let parts = List.filter (fun s -> s <> "") (String.split_on_char '/' path) in
  let rec go dir = function
    | [] -> Some dir
    | name :: rest -> (
        match lookup t ~dir name with None -> None | Some i -> go i rest)
  in
  go (root_ino t) parts

let dump t =
  let buf = Buffer.create 256 in
  let rec go indent dir =
    let entries =
      readdir t ~dir |> List.sort (fun (a, _) (b, _) -> compare a b)
    in
    List.iter
      (fun (name, ino) ->
        let st = stat t ino in
        match st.kind with
        | Dir ->
            Printf.bprintf buf "%s%s/ (ino %d, %d entries)\n" indent name ino
              st.size;
            go (indent ^ "  ") ino
        | File ->
            Printf.bprintf buf "%s%s (ino %d, %d bytes, nlink %d, gen %d)\n"
              indent name ino st.size st.nlink st.gen)
      entries
  in
  let r = root_ino t in
  Printf.bprintf buf "/ (ino %d, %d entries)\n" r (stat t r).size;
  go "  " r;
  Buffer.contents buf
