(** Sharded multi-engine façade.

    Partitions the persistent heap across [shards] fully independent
    {!Kamino_core.Engine} instances — per-shard region, intent log, backup,
    applier and obs tracks — behind a deterministic key router. Single-shard
    transactions run exactly as on a standalone engine (shard [i] of a
    façade seeded [s] is bit-identical to [Engine.create ~seed:(s + i)]);
    cross-shard transactions use ordered shard acquisition and two-phase
    commit against a persistent commit marker, so a crash anywhere in the
    protocol leaves the transaction all-or-nothing across shards (DESIGN.md
    par11). *)

module Engine = Kamino_core.Engine

type t

(** [create ~kind ~seed ~shards ()] builds [shards] engines. Engine [i]
    is created with seed [seed + i] and, when its tracer is enabled, base
    Perfetto track [obs_track_base + 4 * i] (named [shard<i>.tx] /
    [.applier] / [.nvm]). The cross-shard commit marker lives in its own
    small region sharing [config]'s cost model and crash mode.

    [shard_obs] (length [shards]) gives shard [i] its {e own} event ring
    [shard_obs.(i)] instead of the shared [obs] — required under
    {!Shard_driver.run} with [domains > 1], where each ring is mutated
    only by its shard's executor domain and
    {!Kamino_obs.Obs.merged} recovers the deterministic global timeline
    afterwards. *)
val create :
  ?config:Engine.config ->
  ?obs:Kamino_obs.Obs.t ->
  ?shard_obs:Kamino_obs.Obs.t array ->
  ?obs_track_base:int ->
  kind:Engine.kind ->
  seed:int ->
  shards:int ->
  unit ->
  t

val shards : t -> int

(** [engine t i] is shard [i]'s engine — the full standalone API applies. *)
val engine : t -> int -> Engine.t

val kind : t -> Engine.kind

val obs : t -> Kamino_obs.Obs.t

(** The commit-marker region (white-box tests). *)
val marker_region : t -> Kamino_nvm.Region.t

(** {1 Routing} *)

(** [route_key ~shards key] is the deterministic key router: a
    multiplicative hash so dense and strided key spaces both spread. *)
val route_key : shards:int -> int -> int

val route : t -> int -> int

(** {1 Transactions} *)

(** [set_clock t i c] switches shard [i]'s active client clock. *)
val set_clock : t -> int -> Kamino_sim.Clock.t -> unit

(** [with_tx t i f] runs a single-shard transaction on shard [i] —
    plain [Engine.with_tx], no façade overhead. *)
val with_tx : t -> int -> (Engine.tx -> 'a) -> 'a

(** Protocol positions reported to [on_step] during {!with_cross_tx} —
    the crash-injection hook for the sharded crash matrix. *)
type cross_step =
  | Prepared of int  (** shard [i]'s write set is durable, still Running *)
  | Marker_written  (** the commit point: marker valid flag persisted *)
  | Committed of int  (** shard [i] marked committed, propagation queued *)
  | Marker_cleared

(** [with_cross_tx t ids f] runs one atomic transaction spanning shards
    [ids]. Participants begin in ascending shard order on the first
    participant's clock; [f] receives a lookup from shard id to its open
    transaction. On normal return: prepare each shard, persist the marker
    (participant [(shard, tx_id)] pairs, then the valid flag, each behind
    its own fence), commit each prepared transaction, clear the marker.
    On exception from [f]: abort every participant and re-raise. Only the
    Kamino kinds support this (two-phase commit); others raise
    [Engine.Error (Unsupported _)]. *)
val with_cross_tx :
  ?on_step:(cross_step -> unit) -> t -> int list -> ((int -> Engine.tx) -> 'a) -> 'a

(** {1 Crashes and recovery} *)

(** Power failure on every shard and the marker region. *)
val crash : t -> unit

(** Recovers every shard. A valid commit marker promotes its listed
    participants — their Running intent records roll {e forward} — and
    is then cleared; without one every incomplete transaction rolls back
    as on a standalone engine. *)
val recover : t -> unit

val drain_backups : t -> unit

(** Per-shard commit watermarks, indexed by shard id: shard [i]'s applier
    publishes its own [(task_id, wm_ns)] independently ([None] when the
    shard's kind cannot serve snapshots). There is deliberately no global
    watermark — sharded snapshot reads are {e per-shard} consistent: each
    key is served at its owning shard's watermark, and a multi-key read
    spanning shards may observe different shards at different prefixes. *)
val watermarks : t -> (int * int) option array

val verify_backups : t -> (unit, string) result

(** {1 Aggregates} *)

val storage_bytes : t -> int

val committed : t -> int

val aborted : t -> int
