(* Bounded lock-free queue (Vyukov's array ring) used as the per-domain
   mailbox of the shard router. Senders are coordinator domains, the
   receiver is the owning executor domain; both sides take one CAS per
   operation in the common case. The per-cell sequence atomics do double
   duty: they arbitrate slot ownership and they carry the happens-before
   edge that makes the plain [value] field safely readable on the other
   side (release store after the write, acquire load before the read —
   OCaml [Atomic] operations are sequentially consistent, which is
   stronger than either). *)

type 'a cell = { mutable value : 'a option; seq : int Atomic.t }

type 'a t = {
  mask : int;
  cells : 'a cell array;
  enq : int Atomic.t;  (* next ticket to enqueue *)
  deq : int Atomic.t;  (* next ticket to dequeue *)
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Mailbox.create: capacity must be positive";
  (* Minimum 2 cells: with a single cell the post-send sequence equals the
     next enqueue ticket, so the full test [dif < 0] never trips and a
     second send would overwrite the unconsumed slot. *)
  let cap =
    let c = ref 2 in
    while !c < capacity do
      c := !c * 2
    done;
    !c
  in
  {
    mask = cap - 1;
    cells = Array.init cap (fun i -> { value = None; seq = Atomic.make i });
    enq = Atomic.make 0;
    deq = Atomic.make 0;
  }

let capacity t = Array.length t.cells

(* A cell is writable when its sequence equals the enqueue ticket, and
   readable when it equals the ticket + 1; anything lower means the ring
   wrapped onto an unconsumed slot (full) or an unproduced one (empty). *)
let try_send t v =
  let rec go () =
    let pos = Atomic.get t.enq in
    let cell = t.cells.(pos land t.mask) in
    let dif = Atomic.get cell.seq - pos in
    if dif = 0 then
      if Atomic.compare_and_set t.enq pos (pos + 1) then begin
        cell.value <- Some v;
        Atomic.set cell.seq (pos + 1);
        true
      end
      else go ()
    else if dif < 0 then false
    else go ()
  in
  go ()

let try_recv t =
  let rec go () =
    let pos = Atomic.get t.deq in
    let cell = t.cells.(pos land t.mask) in
    let dif = Atomic.get cell.seq - (pos + 1) in
    if dif = 0 then
      if Atomic.compare_and_set t.deq pos (pos + 1) then begin
        let v = cell.value in
        cell.value <- None;
        Atomic.set cell.seq (pos + t.mask + 1);
        v
      end
      else go ()
    else if dif < 0 then None
    else go ()
  in
  go ()

let send t v =
  while not (try_send t v) do
    Domain.cpu_relax ()
  done

let recv t =
  let rec go () =
    match try_recv t with
    | Some v -> v
    | None ->
        Domain.cpu_relax ();
        go ()
  in
  go ()
