module Engine = Kamino_core.Engine
module Kv = Kamino_kv.Kv

type t = { shard : Shard.t; stores : Kv.t array }

let create shard ~value_size ~node_size =
  let stores =
    Array.init (Shard.shards shard) (fun i ->
        Kv.create (Shard.engine shard i) ~value_size ~node_size)
  in
  { shard; stores }

let reattach shard =
  let stores =
    Array.init (Shard.shards shard) (fun i -> Kv.reattach (Shard.engine shard i))
  in
  { shard; stores }

let shard t = t.shard

let store t i = t.stores.(i)

let store_of_key t key = t.stores.(Shard.route t.shard key)

let size t = Array.fold_left (fun acc s -> acc + Kv.size s) 0 t.stores

(* Single-key operations: route, then run on the owning shard's store as
   a plain single-shard transaction. *)
let put t key value = Kv.put (store_of_key t key) key value

let get t key = Kv.get (store_of_key t key) key

(* Routed snapshot reads: each key is served from its owning shard's
   backup at that shard's own watermark — per-shard consistency, no
   cross-shard watermark exists. Zero locks on the snapshot path, so a
   concurrent cross-shard [multi_put] holding its whole lock set cannot
   block these. *)
let snapshot_get ?clock t key = Kv.snapshot_get ?clock (store_of_key t key) key

let snapshot_multi_get ?clock t keys =
  List.map (fun key -> (key, snapshot_get ?clock t key)) keys

let delete t key = Kv.delete (store_of_key t key) key

let read_modify_write t key f = Kv.read_modify_write (store_of_key t key) key f

let exists t key = Kv.exists (store_of_key t key) key

let range t i ~lo ~hi = Kv.range t.stores.(i) ~lo ~hi

(* Keys are hash-routed, so the ordered successor set of [lo] lives on the
   shard that owns [lo]'s slice of the key space — YCSB-E's scan runs
   against the owning store's leaf chain. *)
let scan t ~lo ~count f = Kv.scan (store_of_key t lo) ~lo ~count f

(* [multi_put] is the cross-shard client: all bindings become visible
   atomically even when their keys route to different shards. The
   single-shard case degenerates to one plain transaction — no marker,
   no 2PC. Under the parallel driver pass [router] (and the calling
   client's home shard as [from]): foreign-shard batches then lease the
   owning executor domains instead of racing them, and the single-shard
   home case stays lock-free. *)
let multi_put ?on_step ?router ?(from = 0) t bindings =
  match bindings with
  | [] -> ()
  | _ ->
      let by_shard = Hashtbl.create 8 in
      List.iter
        (fun (key, value) ->
          let i = Shard.route t.shard key in
          Hashtbl.replace by_shard i
            ((key, value) :: Option.value ~default:[] (Hashtbl.find_opt by_shard i)))
        bindings;
      let ids = Hashtbl.fold (fun i _ acc -> i :: acc) by_shard [] in
      let single i =
        Engine.with_tx (Shard.engine t.shard i) (fun tx ->
            List.iter
              (fun (key, value) -> Kv.put_tx tx t.stores.(i) key value)
              (List.rev (Hashtbl.find by_shard i)))
      in
      let cross with_cross_tx =
        with_cross_tx (fun tx_of ->
            List.iter
              (fun i ->
                let tx = tx_of i in
                List.iter
                  (fun (key, value) -> Kv.put_tx tx t.stores.(i) key value)
                  (List.rev (Hashtbl.find by_shard i)))
              (List.sort compare ids))
      in
      (match (ids, router) with
      | [ i ], None -> single i
      | [ i ], Some r -> Shard_router.exclusive r ~from [ i ] (fun () -> single i)
      | _, None -> cross (Shard.with_cross_tx ?on_step t.shard ids)
      | _, Some r -> cross (Shard_router.with_cross_tx ?on_step r ~from ids))

let validate t =
  let rec go i =
    if i >= Array.length t.stores then Ok ()
    else
      match Kv.validate t.stores.(i) with
      | Ok () -> go (i + 1)
      | Error e -> Error (Printf.sprintf "shard %d: %s" i e)
  in
  go 0
