module Clock = Kamino_sim.Clock
module Stats = Kamino_sim.Stats
module Driver = Kamino_workload.Driver

let home ~shards client = client mod shards

(* The driver mirrors Driver.run with two changes: each client is pinned
   to a home shard (round-robin) and carries a fixed operation quota
   instead of drawing from a global pool. The quota is what makes a
   shard's sub-workload self-contained, and self-containment is what
   makes the *decomposition* valid: the global furthest-behind pick,
   restricted to one shard's clients, is exactly that shard's local
   furthest-behind pick (clients never migrate, quotas are fixed, and no
   cross-shard state feeds the choice). So the driver executes each
   shard as an independent *lane* — its clients, their clocks and
   quotas, its latency series — and the lane's operation stream is the
   same whether lanes run interleaved on one domain or concurrently on
   many. test_shard.ml holds the per-shard timelines to a standalone
   engine bit-for-bit, and the parallel-vs-sequential oracle fingerprints
   whole heaps across [domains] settings. *)

type lane = {
  l_shard : int;
  l_clients : int array;  (* global client ids, ascending *)
  l_quota : int array;  (* indexed like [l_clients] *)
  l_clocks : Clock.t array;
  l_start : int;  (* shard timeline at lane start (post-load) *)
  mutable l_remaining : int;
  (* Label -> series, plus first-appearance order for a canonical merge. *)
  l_series : (string, Stats.series) Hashtbl.t;
  mutable l_labels : string list;  (* reversed first-appearance order *)
  mutable l_elapsed : int;
}

let make_lanes ~shard ~clients ~total_ops =
  let shards = Shard.shards shard in
  let quota_of c = (total_ops / clients) + if c < total_ops mod clients then 1 else 0 in
  Array.init shards (fun s ->
      let mine =
        Array.of_list
          (List.filter (fun c -> home ~shards c = s) (List.init clients Fun.id))
      in
      let quota = Array.map quota_of mine in
      (* Each client starts after whatever already happened on its home
         shard's timeline (the load phase). *)
      let start = Kamino_core.Engine.now (Shard.engine shard s) in
      {
        l_shard = s;
        l_clients = mine;
        l_quota = quota;
        l_clocks = Array.map (fun _ -> Clock.create_at start) mine;
        l_start = start;
        l_remaining = Array.fold_left ( + ) 0 quota;
        l_series = Hashtbl.create 8;
        l_labels = [];
        l_elapsed = 0;
      })

let lane_series lane label =
  match Hashtbl.find_opt lane.l_series label with
  | Some s -> s
  | None ->
      let s = Stats.create () in
      Hashtbl.add lane.l_series label s;
      lane.l_labels <- label :: lane.l_labels;
      s

(* One full lane: the furthest-behind client with quota left runs next,
   progress measured from the lane's own start so shards whose load
   phases ended at different times are compared fairly. [service] is the
   router poll point — between operations, no transaction active — where
   a parallel executor answers lease requests from coordinators. *)
let exec_lane ~shard ~step ~service lane =
  let n = Array.length lane.l_clients in
  while lane.l_remaining > 0 do
    service ();
    let pick = ref (-1) in
    let behind = ref max_int in
    for k = 0 to n - 1 do
      let p = Clock.now lane.l_clocks.(k) - lane.l_start in
      if lane.l_quota.(k) > 0 && p < !behind then begin
        pick := k;
        behind := p
      end
    done;
    let k = !pick in
    lane.l_quota.(k) <- lane.l_quota.(k) - 1;
    lane.l_remaining <- lane.l_remaining - 1;
    let clock = lane.l_clocks.(k) in
    Shard.set_clock shard lane.l_shard clock;
    let t0 = Clock.now clock in
    let label = step ~client:lane.l_clients.(k) ~shard_id:lane.l_shard () in
    Stats.add (lane_series lane label) (float_of_int (Clock.now clock - t0))
  done;
  let m = ref 0 in
  Array.iter (fun clk -> m := max !m (Clock.now clk - lane.l_start)) lane.l_clocks;
  lane.l_elapsed <- !m

(* Merge lane results into one Driver.result, canonically: labels in
   first-appearance order over lanes in shard order, each label's series
   rebuilt lane by lane in shard order. Merge order never depends on
   which domain finished first, so the result is bit-identical across
   [domains] settings — including the float sums inside Stats. *)
let merge_lanes ~total_ops lanes =
  let labels =
    Array.fold_left
      (fun acc lane ->
        List.fold_left
          (fun acc l -> if List.mem l acc then acc else acc @ [ l ])
          acc
          (List.rev lane.l_labels))
      [] lanes
  in
  let merged label =
    Array.fold_left
      (fun acc lane ->
        match Hashtbl.find_opt lane.l_series label with
        | Some s -> Stats.merge acc s
        | None -> acc)
      (Stats.create ()) lanes
  in
  let latencies = List.map (fun l -> (l, merged l)) labels in
  let all =
    List.fold_left (fun acc (_, s) -> Stats.merge acc s) (Stats.create ()) latencies
  in
  let elapsed_ns = Array.fold_left (fun m lane -> max m lane.l_elapsed) 0 lanes in
  {
    Driver.total_ops;
    elapsed_ns;
    throughput_mops =
      (if elapsed_ns = 0 then 0.0
       else float_of_int total_ops /. (float_of_int elapsed_ns /. 1e9) /. 1e6);
    mean_latency_ns = Stats.mean all;
    latencies;
  }

let run ?(domains = 1) ?router ~shard ~clients ~total_ops ~step () =
  if clients <= 0 then invalid_arg "Shard_driver.run: clients must be positive";
  if domains <= 0 then invalid_arg "Shard_driver.run: domains must be positive";
  (match router with
  | Some r when Shard_router.shard r != shard ->
      invalid_arg "Shard_driver.run: router belongs to a different facade"
  | _ -> ());
  let shards = Shard.shards shard in
  let nd = max 1 (min domains shards) in
  let lanes = make_lanes ~shard ~clients ~total_ops in
  Option.iter (fun r -> Shard_router.attach r ~domains:nd) router;
  let service_for d =
    match router with
    | Some r when nd > 1 -> fun () -> Shard_router.service r ~domain:d
    | _ -> fun () -> ()
  in
  if nd = 1 then
    (* Sequential mode: lanes run to completion in shard order on the
       calling domain. (Interleaving lanes op-by-op would also be
       correct — lanes share nothing — but whole-lane order is what the
       parallel mode's per-domain loop produces, so both modes are the
       same code path per lane.) *)
    Array.iter (exec_lane ~shard ~step ~service:(service_for 0)) lanes
  else begin
    (* Parallel mode: domain [d] owns lanes [s] with [s mod nd = d] and
       runs them in ascending shard order. Engines, clocks, rngs and obs
       rings of a lane are touched only by its owner (router leases
       excepted), so no locks are needed. After its last lane a domain
       keeps answering lease requests until every domain is done —
       coordinators may still need its engines. *)
    let active = Atomic.make nd in
    let body d =
      let service = service_for d in
      Array.iter
        (fun lane -> if lane.l_shard mod nd = d then exec_lane ~shard ~step ~service lane)
        lanes;
      Atomic.decr active;
      while Atomic.get active > 0 do
        service ();
        Domain.cpu_relax ()
      done
    in
    let spawned = Array.init (nd - 1) (fun k -> Domain.spawn (fun () -> body (k + 1))) in
    body 0;
    Array.iter Domain.join spawned
  end;
  Option.iter (fun r -> Shard_router.attach r ~domains:1) router;
  merge_lanes ~total_ops lanes
