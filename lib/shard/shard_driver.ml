module Clock = Kamino_sim.Clock
module Stats = Kamino_sim.Stats
module Driver = Kamino_workload.Driver

let home ~shards client = client mod shards

(* Mirrors Driver.run with two changes: each client is pinned to a home
   shard (round-robin) and carries a fixed operation quota instead of
   drawing from a global pool. The quota is what makes a shard's
   sub-workload self-contained: shard [i] executes exactly the quota of
   its clients, in exactly the order a standalone engine run of those
   clients would — the global min-clock pick, restricted to one shard's
   clients, is that shard's min-clock pick. test_shard.ml holds the
   per-shard timelines to a standalone engine bit-for-bit. *)
let run ~shard ~clients ~total_ops ~step =
  if clients <= 0 then invalid_arg "Shard_driver.run: clients must be positive";
  let shards = Shard.shards shard in
  let quota =
    Array.init clients (fun c ->
        (total_ops / clients) + if c < total_ops mod clients then 1 else 0)
  in
  (* Each client starts after whatever already happened on its home
     shard's timeline (the load phase). *)
  let starts =
    Array.init clients (fun c ->
        Kamino_core.Engine.now (Shard.engine shard (home ~shards c)))
  in
  let clocks = Array.init clients (fun c -> Clock.create_at starts.(c)) in
  let latencies : (string, Stats.series) Hashtbl.t = Hashtbl.create 8 in
  let series label =
    match Hashtbl.find_opt latencies label with
    | Some s -> s
    | None ->
        let s = Stats.create () in
        Hashtbl.add latencies label s;
        s
  in
  for _ = 1 to total_ops do
    (* Furthest-behind client with work left runs next; progress is
       measured from each client's own start so shards whose load phases
       ended at different times are compared fairly. *)
    let client = ref (-1) in
    let behind = ref max_int in
    for c = 0 to clients - 1 do
      let p = Clock.now clocks.(c) - starts.(c) in
      if quota.(c) > 0 && p < !behind then begin
        client := c;
        behind := p
      end
    done;
    let c = !client in
    quota.(c) <- quota.(c) - 1;
    let clock = clocks.(c) in
    let shard_id = home ~shards c in
    Shard.set_clock shard shard_id clock;
    let t0 = Clock.now clock in
    let label = step ~client:c ~shard_id () in
    Stats.add (series label) (float_of_int (Clock.now clock - t0))
  done;
  let elapsed_ns =
    let m = ref 0 in
    Array.iteri (fun c clk -> m := max !m (Clock.now clk - starts.(c))) clocks;
    !m
  in
  let all = Hashtbl.fold (fun _ s acc -> Stats.merge acc s) latencies (Stats.create ()) in
  {
    Driver.total_ops;
    elapsed_ns;
    throughput_mops =
      (if elapsed_ns = 0 then 0.0
       else float_of_int total_ops /. (float_of_int elapsed_ns /. 1e9) /. 1e6);
    mean_latency_ns = Stats.mean all;
    latencies = Hashtbl.fold (fun k v acc -> (k, v) :: acc) latencies [];
  }
