(** Cross-domain router: makes cross-shard transactions work when shard
    lanes execute on separate OCaml domains ({!Shard_driver.run} with
    [domains > 1]).

    Each shard engine is single-owner — only its executor domain touches
    it — so ordinary operations take no locks. An operation spanning
    foreign shards {e leases} their host domains through per-domain
    mailboxes: the coordinator parks each foreign executor at a safe
    point (between operations, no transaction active), drives the parked
    domains' engines directly through the plain {!Shard} API, then
    releases them. All leasing operations serialize on a single
    coordinator lock, mirroring the fact that the persistent cross-shard
    commit marker is one record; the mailbox atomics carry the
    happens-before edges, so engine state needs no locking of its own
    (DESIGN.md §13).

    With [domains = 1] (or outside a parallel run) every shard is
    home-hosted: no messages are ever sent and the single-participant
    fast path is lock-free, so sequential callers can pass a router
    unconditionally. Leased operations are linearizable and crash-atomic
    exactly like their sequential counterparts, but they are {e not}
    part of the bit-determinism contract — the parallel-vs-sequential
    oracle covers home-pinned workloads only. *)

type t

val create : Shard.t -> t

val shard : t -> Shard.t

(** [attach t ~domains] fixes the shard-to-domain placement (shard [i]
    on domain [i mod domains], the driver's lane grouping). Called by
    {!Shard_driver.run}; callers only need it when using the router
    without the driver. *)
val attach : t -> domains:int -> unit

val domains : t -> int

(** The executor domain slot hosting shard [i]. *)
val host : t -> int -> int

(** [service t ~domain] answers pending leases addressed to [domain]:
    ack, spin until released, repeat. Executors call it between
    operations; the no-lease fast path is one atomic load. While parked
    inside this call the domain's engines may be driven by the
    coordinator. *)
val service : t -> domain:int -> unit

(** [exclusive t ~from ids f] runs [f] with exclusive ownership of every
    shard in [ids]. [from] is the caller's home shard (it identifies the
    calling domain under the attached placement — it need not be in
    [ids]). Home-domain single-shard calls run [f] directly with no
    locking; anything else takes the coordinator lock and leases the
    foreign hosts for the duration of [f]. *)
val exclusive : t -> from:int -> int list -> (unit -> 'a) -> 'a

(** {!Shard.with_cross_tx} under {!exclusive} — the cross-shard 2PC,
    safe from any executor domain. *)
val with_cross_tx :
  ?on_step:(Shard.cross_step -> unit) ->
  t ->
  from:int ->
  int list ->
  ((int -> Kamino_core.Engine.tx) -> 'a) ->
  'a

(** A single-shard transaction on shard [i], which may be foreign —
    {!Shard.with_tx} under {!exclusive}. *)
val with_remote_tx : t -> from:int -> int -> (Kamino_core.Engine.tx -> 'a) -> 'a

(** Leased (locked) operations completed so far. *)
val crossed : t -> int

(** {2 Fast-path accounting}

    Plain-int counters — exact only when the router is driven from a
    single domain, which is what the regression tests do. The invariant
    they pin: with zero leases in flight, every {!service} call costs
    exactly one atomic load (of the park gate) and never enters the
    mailbox drain. *)

(** {!service} invocations. *)
val service_calls : t -> int

(** Atomic loads of the park gate performed by {!service}. *)
val service_loads : t -> int

(** Slow-path entries: {!service} calls that saw parks in flight and
    drained the mailbox. *)
val service_drains : t -> int
