(** Key-value store over a sharded façade: one {!Kamino_kv.Kv} per shard,
    keys routed by {!Shard.route}. Single-key operations are plain
    single-shard transactions on the owning shard; {!multi_put} commits a
    batch spanning shards atomically through {!Shard.with_cross_tx}. *)

type t

val create : Shard.t -> value_size:int -> node_size:int -> t

(** Re-bind every per-shard store after {!Shard.recover}. *)
val reattach : Shard.t -> t

val shard : t -> Shard.t

(** Shard [i]'s underlying store (white-box tests). *)
val store : t -> int -> Kamino_kv.Kv.t

val size : t -> int

val put : t -> int -> string -> unit

val get : t -> int -> string option

(** [snapshot_get t key] routes the key and serves it from the owning
    shard's backup at {e that shard's} watermark
    ({!Kamino_kv.Kv.snapshot_get}): no locks, so a concurrent cross-shard
    {!multi_put} holding its full lock set cannot block it. Falls back to
    the locked path when the shard cannot serve snapshots. *)
val snapshot_get : ?clock:Kamino_sim.Clock.t -> t -> int -> string option

(** [snapshot_multi_get t keys] is [snapshot_get] per key, in order.
    {b Per-shard consistency}: each key reflects its owning shard's own
    watermark — keys on different shards may be observed at different
    committed prefixes, and there is no cross-shard snapshot point
    (DESIGN.md par12). *)
val snapshot_multi_get :
  ?clock:Kamino_sim.Clock.t -> t -> int list -> (int * string option) list

val delete : t -> int -> bool

val read_modify_write : t -> int -> (string -> string) -> bool

val exists : t -> int -> bool

(** [range t i ~lo ~hi] scans shard [i]'s local index (keys are hash
    routed, so a global key-ordered scan does not exist by design). *)
val range : t -> int -> lo:int -> hi:int -> (int * string) list

(** [scan t ~lo ~count f] — count-bounded ordered scan from the first key
    [>= lo], served by the shard owning [lo] (keys are hash-routed; the
    ordered window lives in that shard's leaf chain). Returns the number
    of bindings visited. *)
val scan : t -> lo:int -> count:int -> (int -> string -> unit) -> int

(** [multi_put t bindings] makes all bindings visible atomically. One
    participating shard: a plain transaction. Several: a cross-shard
    two-phase commit ([on_step] passes through to
    {!Shard.with_cross_tx}).

    Under {!Shard_driver.run} with [domains > 1], pass the run's
    [router] and the calling client's home shard as [from]: batches
    touching foreign shards then run under {!Shard_router.exclusive}
    (coordinator lock + domain leases) instead of racing the owning
    executors. Home-shard single-shard batches stay lock-free. *)
val multi_put :
  ?on_step:(Shard.cross_step -> unit) ->
  ?router:Shard_router.t ->
  ?from:int ->
  t ->
  (int * string) list ->
  unit

val validate : t -> (unit, string) result
