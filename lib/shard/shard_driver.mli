(** Multi-client virtual-time driver over a sharded façade.

    Clients are pinned round-robin to home shards (client [c] drives shard
    [c mod shards]) and each carries a fixed quota of
    [total_ops / clients] operations (earlier clients absorb the
    remainder). The furthest-behind client — measured from its own home
    shard's start time — runs next, which restricted to one shard's
    clients is exactly {!Kamino_workload.Driver.run}'s order: every
    shard's timeline is bit-identical to a standalone engine running that
    shard's clients alone. *)

(** The home shard of [client] under [shards]. *)
val home : shards:int -> int -> int

(** [run ~shard ~clients ~total_ops ~step] — [step ~client ~shard_id ()]
    must execute exactly one operation against shard [shard_id] (whose
    active clock is already the client's) and return the operation's
    label. Returns the standard driver result; [elapsed_ns] is the
    largest per-client elapsed time, so throughput aggregates across
    shards. *)
val run :
  shard:Shard.t ->
  clients:int ->
  total_ops:int ->
  step:(client:int -> shard_id:int -> unit -> string) ->
  Kamino_workload.Driver.result
