(** Multi-client virtual-time driver over a sharded façade, with an
    optional real-multicore mode.

    Clients are pinned round-robin to home shards (client [c] drives
    shard [c mod shards]) and each carries a fixed quota of
    [total_ops / clients] operations (earlier clients absorb the
    remainder). Because clients never migrate and quotas are fixed, the
    global furthest-behind order decomposes exactly into independent
    per-shard {e lanes}: the global pick restricted to one shard's
    clients is that shard's local pick. The driver therefore executes
    each lane's stream locally — and, with [domains > 1], concurrently
    on OCaml domains — while every per-shard timeline stays bit-identical
    to a standalone engine running that shard's clients alone, and the
    merged result is bit-identical across [domains] settings
    (DESIGN.md §13). *)

(** The home shard of [client] under [shards]. *)
val home : shards:int -> int -> int

(** [run ~shard ~clients ~total_ops ~step ()] — [step ~client ~shard_id ()]
    must execute exactly one operation against shard [shard_id] (whose
    active clock is already the client's) and return the operation's
    label. Returns the standard driver result; [elapsed_ns] is the
    largest per-client elapsed time, so throughput aggregates across
    shards.

    [domains] (default 1, clamped to the shard count) runs lanes on that
    many OCaml domains, shard [s] on domain [s mod domains]; each domain
    executes its lanes in ascending shard order. Simulated time, NVM
    counters, final heap images, latency series and Perfetto rings (via
    [shard_obs] + {!Kamino_obs.Obs.merged}) are bit-identical for any
    [domains] — wall-clock time is what changes. [step] must be
    domain-safe in the natural sharded sense: state it touches for shard
    [s] (stores, rng streams of [s]'s clients) must not be shared with
    other shards' operations.

    [router] enables cross-shard operations from inside [step] under
    [domains > 1] (pass it to {!Shard_kv.multi_put} or use
    {!Shard_router.with_cross_tx} with [~from:shard_id]): the driver
    attaches it to the run's placement and executors answer its lease
    requests between operations. Routed cross-shard operations are
    linearizable but excluded from the bit-determinism contract. *)
val run :
  ?domains:int ->
  ?router:Shard_router.t ->
  shard:Shard.t ->
  clients:int ->
  total_ops:int ->
  step:(client:int -> shard_id:int -> unit -> string) ->
  unit ->
  Kamino_workload.Driver.result
