(** Bounded lock-free MPSC/MPMC queue — the cross-domain mailbox of the
    shard router.

    A fixed ring of cells guarded by per-cell sequence atomics (Vyukov's
    bounded queue): senders and receivers each take one CAS per
    operation, and the sequence atomics provide the happens-before edges
    that publish the payload across domains. Capacity is rounded up to a
    power of two, minimum 2 — a one-cell ring cannot distinguish full
    from empty. *)

type 'a t

val create : capacity:int -> 'a t

val capacity : 'a t -> int

(** [try_send t v] enqueues [v], or returns [false] if the ring is full. *)
val try_send : 'a t -> 'a -> bool

(** [try_recv t] dequeues the oldest message, or [None] if empty. *)
val try_recv : 'a t -> 'a option

(** Blocking variants: spin with [Domain.cpu_relax] until space or a
    message is available. *)

val send : 'a t -> 'a -> unit

val recv : 'a t -> 'a
