(* Sharded multi-engine façade. The heap is partitioned across [n]
   fully independent engine instances — per-shard region, intent log,
   backup, applier, clock and obs tracks — so non-dependent transactions
   on different shards never share an applier timeline or an intent-log
   ring. This is the paper's §4.3 scaling argument taken one step
   further: within a shard only dependent transactions wait for backup
   catch-up; across shards nothing is shared at all.

   Single-shard transactions run exactly as on a standalone engine (the
   façade adds zero simulated cost — test_shard.ml pins per-shard sim-ns
   to a standalone engine run of the same sub-workload). Cross-shard
   transactions use ordered shard acquisition (ascending shard id, which
   makes deadlock impossible under the serial data-level execution) and
   two-phase commit against a persistent commit marker:

     prepare each shard (write set + intent record durable, still
         Running)
     -> write marker payload (participant (shard, tx_id) pairs), flush,
        fence
     -> set marker valid flag, flush, fence          <- the commit point
     -> commit_prepared each shard (mark Committed, enqueue propagation,
        release locks at applier finish)
     -> clear marker, flush, fence

   Crash recovery reads the marker first. Valid marker: every listed
   participant whose intent record still says Running is promoted —
   rolled forward — which is safe because prepare made its in-place
   writes durable before the valid flag could exist. No (valid) marker:
   every Running record rolls back as usual. Either way the cross-shard
   transaction is all-or-nothing. *)

module Region = Kamino_nvm.Region
module Clock = Kamino_sim.Clock
module Obs = Kamino_obs.Obs
module Engine = Kamino_core.Engine

type t = { engines : Engine.t array; marker : Region.t; s_obs : Obs.t }

(* Deterministic key->shard router: a multiplicative mix so consecutive
   keys spread across shards (plain [key mod shards] would stripe YCSB's
   dense key space but correlate with any strided access pattern). *)
let route_key ~shards key =
  if shards <= 0 then invalid_arg "Shard.route_key: shards must be positive";
  let h = key * 0x9e3779b97f4a7 in
  let h = h lxor (h lsr 31) in
  (h land max_int) mod shards

(* Marker layout (all 8-byte words): [0] valid flag, [8] participant
   count, then per participant [16+16k] shard id, [24+16k] tx id. One
   cross-shard commit is in flight at a time (execution is serial at the
   data level), so one record suffices. *)
let marker_size ~shards =
  let need = 16 + (16 * shards) in
  ((need + 4095) / 4096) * 4096

let create ?(config = Engine.default_config) ?(obs = Obs.null) ?shard_obs
    ?(obs_track_base = 1) ~kind ~seed ~shards () =
  if shards <= 0 then invalid_arg "Shard.create: shards must be positive";
  (match shard_obs with
  | Some rings when Array.length rings <> shards ->
      invalid_arg "Shard.create: shard_obs length must equal shards"
  | _ -> ());
  let engines =
    Array.init shards (fun i ->
        (* With [shard_obs], shard [i]'s events land in its own ring — the
           only mutator is the shard's executor domain, so tracing stays
           lock-free under the parallel driver; [Obs.merged] rebuilds the
           global timeline deterministically. *)
        let ring =
          match shard_obs with Some rings -> rings.(i) | None -> obs
        in
        let e =
          Engine.create ~config ~obs:ring ~obs_track:(obs_track_base + (4 * i))
            ~kind ~seed:(seed + i) ()
        in
        if Obs.enabled ring then begin
          let base = obs_track_base + (4 * i) in
          Obs.name_track ring base (Printf.sprintf "shard%d.tx" i);
          Obs.name_track ring (base + 1) (Printf.sprintf "shard%d.applier" i);
          Obs.name_track ring (base + 2) (Printf.sprintf "shard%d.nvm" i)
        end;
        e)
  in
  let marker =
    Region.create ~cost:config.Engine.cost ~crash_mode:config.Engine.crash_mode
      ~rng:(Kamino_sim.Rng.create (seed lxor 0x5bd1))
      ~clock:(Clock.create ()) ~size:(marker_size ~shards) ()
  in
  { engines; marker; s_obs = obs }

let shards t = Array.length t.engines

let engine t i = t.engines.(i)

let kind t = Engine.kind t.engines.(0)

let route t key = route_key ~shards:(Array.length t.engines) key

let obs t = t.s_obs

let marker_region t = t.marker

let storage_bytes t =
  Array.fold_left (fun acc e -> acc + Engine.storage_bytes e) 0 t.engines
  + Region.size t.marker

let set_clock t i clk = Engine.set_clock t.engines.(i) clk

let with_tx t i f = Engine.with_tx t.engines.(i) f

(* --- Cross-shard transactions ------------------------------------------- *)

type cross_step = Prepared of int | Marker_written | Committed of int | Marker_cleared

let write_marker t pairs =
  let m = t.marker in
  Region.write_int m 8 (List.length pairs);
  List.iteri
    (fun k (shard, txid) ->
      Region.write_int m (16 + (16 * k)) shard;
      Region.write_int m (24 + (16 * k)) txid)
    pairs;
  Region.flush m 8 (8 + (16 * List.length pairs));
  Region.fence m;
  (* The commit point: the valid flag becomes durable strictly after the
     payload it covers. *)
  Region.write_int m 0 1;
  Region.flush m 0 8;
  Region.fence m

let clear_marker t =
  let m = t.marker in
  Region.write_int m 0 0;
  Region.flush m 0 8;
  Region.fence m

let read_marker t =
  let m = t.marker in
  if Region.read_int m 0 <> 1 then []
  else
    let n = Region.read_int m 8 in
    List.init n (fun k ->
        (Region.read_int m (16 + (16 * k)), Region.read_int m (24 + (16 * k))))

let with_cross_tx ?(on_step = fun _ -> ()) t shard_ids f =
  let ids = List.sort_uniq compare shard_ids in
  (match ids with
  | [] -> invalid_arg "Shard.with_cross_tx: no participant shards"
  | _ ->
      List.iter
        (fun i ->
          if i < 0 || i >= Array.length t.engines then
            invalid_arg (Printf.sprintf "Shard.with_cross_tx: no shard %d" i))
        ids);
  (* Ordered acquisition: begin on every participant in ascending shard
     id. All participants share the coordinating client's clock so the
     transaction has one coherent timeline. *)
  let clk = Engine.clock t.engines.(List.hd ids) in
  List.iter (fun i -> Engine.set_clock t.engines.(i) clk) ids;
  let txs = List.map (fun i -> (i, Engine.begin_tx t.engines.(i))) ids in
  let tx_of i =
    match List.assoc_opt i txs with
    | Some tx -> tx
    | None -> invalid_arg (Printf.sprintf "Shard.with_cross_tx: shard %d is not a participant" i)
  in
  match f tx_of with
  | exception exn ->
      (* User code failed before the commit protocol started: roll every
         participant back, newest first. Kinds that cannot abort locally
         surface their typed error unless one is already in flight. *)
      List.iter
        (fun (_, tx) -> try Engine.abort tx with Engine.Error _ -> ())
        (List.rev txs);
      raise exn
  | v ->
      List.iter
        (fun (i, tx) ->
          Engine.prepare tx;
          on_step (Prepared i))
        txs;
      Region.set_clock t.marker clk;
      write_marker t (List.map (fun (i, tx) -> (i, Engine.tx_id tx)) txs);
      on_step Marker_written;
      List.iter
        (fun (i, tx) ->
          Engine.commit_prepared tx;
          on_step (Committed i))
        txs;
      clear_marker t;
      on_step Marker_cleared;
      v

(* --- Crash and recovery -------------------------------------------------- *)

let crash t =
  Array.iter Engine.crash t.engines;
  Region.crash t.marker

let recover t =
  let marked = read_marker t in
  Array.iteri
    (fun i e ->
      Engine.recover ~promote_running:(fun txid -> List.mem (i, txid) marked) e)
    t.engines;
  (* Decision fully applied on every shard; retire the marker. *)
  if marked <> [] then clear_marker t

let drain_backups t = Array.iter Engine.drain_backup t.engines

(* Per-shard commit watermarks: shard [i]'s applier publishes its own
   [(task_id, wm_ns)] independently — there is no global watermark, which
   is exactly the per-shard consistency contract of sharded snapshot
   reads (DESIGN.md par12). *)
let watermarks t = Array.map Engine.snapshot_watermark t.engines

let verify_backups t =
  let rec go i =
    if i >= Array.length t.engines then Ok ()
    else
      match Engine.verify_backup t.engines.(i) with
      | Ok () -> go (i + 1)
      | Error e -> Error (Printf.sprintf "shard %d: %s" i e)
  in
  go 0

(* --- Aggregate metrics --------------------------------------------------- *)

let committed t =
  Array.fold_left (fun acc e -> acc + (Engine.metrics e).Engine.committed) 0 t.engines

let aborted t =
  Array.fold_left (fun acc e -> acc + (Engine.metrics e).Engine.aborted) 0 t.engines
