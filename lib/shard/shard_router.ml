(* Cross-domain coordination for the parallel shard driver (DESIGN.md §13).

   Ownership model: every shard engine is single-owner — the executor
   domain running the shard's lane is its only mutator, so the hot path
   takes no locks at all. Cross-shard work (the persistent-marker 2PC
   behind [Shard_kv.multi_put], or any transaction on a foreign shard)
   needs one domain to drive several engines at once. The router makes
   that safe by *leasing* host domains: the coordinator sends a [park]
   message to each foreign host's mailbox; the host answers at a safe
   point — between its own operations, no transaction active — by
   acking and spinning until released; the coordinator then drives the
   parked domains' engines directly through the ordinary [Shard] API and
   releases them. The mailbox and park atomics carry the happens-before
   edges in both directions, so the engine state itself needs no
   synchronization.

   Deadlock freedom: every leasing operation first takes the single
   [cross] lock (the persistent commit marker is one record, so
   cross-shard commits are mutually exclusive anyway), making the
   coordinator unique; and every spin loop that can precede an ack —
   lock acquisition in particular — keeps servicing the spinner's own
   mailbox, so the unique coordinator's parks are always answered:
   a would-be coordinator waiting for the lock parks and resumes
   waiting, an executor parks at its next service point, and a drained
   executor parks from its retire loop. *)

module Engine = Kamino_core.Engine

type park = { ack : bool Atomic.t; release : bool Atomic.t }

type t = {
  shard : Shard.t;
  mutable domains : int;  (* executor domains of the active run *)
  host_of : int array;  (* shard id -> executor domain slot *)
  inboxes : park Mailbox.t array;  (* indexed by domain slot *)
  cross : bool Atomic.t;  (* the single-coordinator lock *)
  parks : int Atomic.t;  (* parks in flight: the service fast path *)
  crossed : int Atomic.t;  (* leased operations completed *)
  (* Fast-path accounting: plain ints — exact only when the router runs on
     a single domain, which is all the regression tests need. *)
  mutable service_calls : int;
  mutable service_loads : int;  (* atomic loads of the [parks] gate *)
  mutable service_drains : int;  (* slow-path entries (gate saw parks) *)
}

let create shard =
  let n = Shard.shards shard in
  {
    shard;
    domains = 1;
    host_of = Array.make n 0;
    inboxes = Array.init n (fun _ -> Mailbox.create ~capacity:16);
    cross = Atomic.make false;
    parks = Atomic.make 0;
    crossed = Atomic.make 0;
    service_calls = 0;
    service_loads = 0;
    service_drains = 0;
  }

let shard t = t.shard

let crossed t = Atomic.get t.crossed

let service_calls t = t.service_calls

let service_loads t = t.service_loads

let service_drains t = t.service_drains

(* Round-robin shard -> domain placement; must mirror the driver's lane
   grouping exactly or a lease would park the wrong executor. *)
let attach t ~domains =
  let shards = Array.length t.host_of in
  let nd = max 1 (min domains shards) in
  t.domains <- nd;
  Array.iteri (fun i _ -> t.host_of.(i) <- i mod nd) t.host_of

let domains t = t.domains

let host t i = t.host_of.(i)

(* Answer pending parks addressed to [domain]. Called by the executor
   between operations and from every wait loop; the common case is one
   atomic load ([parks] = 0). A parked executor holds no transaction, so
   the coordinator may drive its engines until [release]. *)
(* Every read of the [parks] gate goes through here so the lease-free
   cost — exactly one atomic load per [service] call — stays measurable. *)
let gate t =
  t.service_loads <- t.service_loads + 1;
  Atomic.get t.parks

let service t ~domain =
  t.service_calls <- t.service_calls + 1;
  if gate t > 0 then begin
    t.service_drains <- t.service_drains + 1;
    let rec drain () =
      match Mailbox.try_recv t.inboxes.(domain) with
      | None -> ()
      | Some p ->
          Atomic.set p.ack true;
          while not (Atomic.get p.release) do
            Domain.cpu_relax ()
          done;
          drain ()
    in
    drain ()
  end

let with_lock t ~domain f =
  while not (Atomic.compare_and_set t.cross false true) do
    (* The current holder may want to lease *us*; answering here is what
       makes the ack waits below deadlock-free. *)
    service t ~domain;
    Domain.cpu_relax ()
  done;
  Fun.protect ~finally:(fun () -> Atomic.set t.cross false) f

let lease t hosts f =
  let parked =
    List.map
      (fun h ->
        let p = { ack = Atomic.make false; release = Atomic.make false } in
        Atomic.incr t.parks;
        Mailbox.send t.inboxes.(h) p;
        (* We hold [cross], so nobody can be leasing us back: a plain
           spin suffices — the host acks at its next service point. *)
        while not (Atomic.get p.ack) do
          Domain.cpu_relax ()
        done;
        p)
      hosts
  in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun p ->
          Atomic.set p.release true;
          Atomic.decr t.parks)
        parked)
    f

let exclusive t ~from ids f =
  (match ids with
  | [] -> invalid_arg "Shard_router.exclusive: no shards"
  | _ ->
      List.iter
        (fun i ->
          if i < 0 || i >= Array.length t.host_of then
            invalid_arg (Printf.sprintf "Shard_router.exclusive: no shard %d" i))
        ids);
  let domain = t.host_of.(from) in
  let hosts =
    List.sort_uniq compare
      (List.filter_map
         (fun i -> if t.host_of.(i) = domain then None else Some (t.host_of.(i)))
         ids)
  in
  (* Entirely home-domain and no marker involved: the executor already
     owns every engine it will touch — run lock-free. The multi-shard
     case always locks, foreign hosts or not, because the commit marker
     is a single shared record. *)
  if hosts = [] && match ids with [ _ ] -> true | _ -> false then f ()
  else
    with_lock t ~domain (fun () ->
        lease t hosts (fun () ->
            let v = f () in
            Atomic.incr t.crossed;
            v))

let with_cross_tx ?on_step t ~from ids f =
  exclusive t ~from ids (fun () -> Shard.with_cross_tx ?on_step t.shard ids f)

let with_remote_tx t ~from i f =
  exclusive t ~from [ i ] (fun () -> Shard.with_tx t.shard i f)
