module Region = Kamino_nvm.Region
module Cost_model = Kamino_nvm.Cost_model

type t = { region : Region.t }

type ptr = int

let null = 0

type range = { off : int; len : int }

(* Metadata block layout (offsets in bytes). *)
let magic_off = 0
let version_off = 8
let size_off = 16
let root_off = 24
let bump_off = 32
let free_heads_off = 64
let data_start_off = 256

let magic_value = 0x4B414D494E4F5458L (* "KAMINOTX" *)
let version_value = 1L

let size_classes =
  [| 32; 64; 128; 256; 512; 1024; 2048; 4096; 8192; 16384; 32768; 65536; 131072; 262144 |]

let n_classes = Array.length size_classes

let max_object_size = size_classes.(n_classes - 1)

let header_size = 16

(* Object header words, relative to the extent start (= ptr - header_size). *)
let hdr_capacity_rel = 0
let hdr_flags_rel = 8

let class_of_size size =
  if size <= 0 then invalid_arg "Heap: object size must be positive";
  if size > max_object_size then
    invalid_arg (Printf.sprintf "Heap: object size %d exceeds max %d" size max_object_size);
  let rec find i = if size_classes.(i) >= size then i else find (i + 1) in
  find 0

let is_class_size len = Array.exists (fun c -> c = len) size_classes

let class_head_off cls = free_heads_off + (cls * 8)

let region t = t.region

let charge_cost t ns = Region.charge t.region ns

let format region =
  if Region.size region < data_start_off + 4096 then
    invalid_arg "Heap.format: region too small";
  let t = { region } in
  Region.write_int64 region magic_off magic_value;
  Region.write_int64 region version_off version_value;
  Region.write_int region size_off (Region.size region);
  Region.write_int region root_off null;
  Region.write_int region bump_off data_start_off;
  for cls = 0 to n_classes - 1 do
    Region.write_int region (class_head_off cls) null
  done;
  Region.persist region 0 data_start_off;
  t

let rebuild_with region ~live =
  let t = { region } in
  Region.write_int64 region magic_off magic_value;
  Region.write_int64 region version_off version_value;
  Region.write_int region size_off (Region.size region);
  Region.write_int region root_off null;
  for cls = 0 to n_classes - 1 do
    Region.write_int region (class_head_off cls) null
  done;
  let bump = ref data_start_off in
  List.iter
    (fun (p, size) ->
      let cls = class_of_size size in
      let capacity = size_classes.(cls) in
      Region.write_int region (p - header_size + hdr_capacity_rel) capacity;
      Region.write_int64 region (p - header_size + hdr_flags_rel) 1L;
      Region.persist region (p - header_size) header_size;
      bump := max !bump (p + capacity))
    live;
  Region.write_int region bump_off !bump;
  Region.persist region 0 data_start_off;
  t

let open_existing region =
  if Region.read_int64 region magic_off <> magic_value then
    failwith "Heap.open_existing: bad magic (region was never formatted?)";
  if Region.read_int64 region version_off <> version_value then
    failwith "Heap.open_existing: unsupported heap version";
  { region }

(* Allocation. *)

let bump t = Region.read_int t.region bump_off

let free_head t cls = Region.read_int t.region (class_head_off cls)

let align16 n = (n + 15) land lnot 15

let alloc_ranges t size =
  let cls = class_of_size size in
  let capacity = size_classes.(cls) in
  let head = free_head t cls in
  if head <> null then
    (* Reuse: the free-list head word and the object extent change. *)
    ( head,
      [
        { off = class_head_off cls; len = 8 };
        { off = head - header_size; len = header_size + capacity };
      ] )
  else begin
    let b = align16 (bump t) in
    let extent_len = header_size + capacity in
    if b + extent_len > Region.size t.region then raise Out_of_memory;
    ( b + header_size,
      [ { off = bump_off; len = 8 }; { off = b; len = extent_len } ] )
  end

let alloc t size =
  let cls = class_of_size size in
  let capacity = size_classes.(cls) in
  charge_cost t (Region.cost_model t.region).Cost_model.alloc_ns;
  let head = free_head t cls in
  if head <> null then begin
    (* Pop the free list: the object's first payload word links to the next
       free object of the class. *)
    let next = Region.read_int t.region head in
    Region.write_int t.region (class_head_off cls) next;
    Region.write_int64 t.region (head - header_size + hdr_flags_rel) 1L;
    Region.fill t.region head capacity 0;
    head
  end
  else begin
    let b = align16 (bump t) in
    let extent_len = header_size + capacity in
    if b + extent_len > Region.size t.region then raise Out_of_memory;
    Region.write_int t.region bump_off (b + extent_len);
    Region.write_int t.region (b + hdr_capacity_rel) capacity;
    Region.write_int64 t.region (b + hdr_flags_rel) 1L;
    (* A fresh bump object is already zero, but an object being re-formatted
       after a rollback may not be; zero it for deterministic contents. *)
    Region.fill t.region (b + header_size) capacity 0;
    b + header_size
  end

let capacity t p =
  if p = null then invalid_arg "Heap.capacity: null pointer";
  Region.read_int t.region (p - header_size + hdr_capacity_rel)

let is_allocated t p =
  p <> null
  && p >= data_start_off + header_size
  && p < bump t
  && Region.read_int64 t.region (p - header_size + hdr_flags_rel) = 1L

let extent t p =
  let cap = capacity t p in
  { off = p - header_size; len = header_size + cap }

let free_ranges t p =
  let cap = capacity t p in
  let cls = class_of_size cap in
  [ { off = class_head_off cls; len = 8 }; { off = p - header_size; len = header_size + cap } ]

let free t p =
  if not (is_allocated t p) then
    invalid_arg (Printf.sprintf "Heap.free: %d is not an allocated object" p);
  charge_cost t (Region.cost_model t.region).Cost_model.free_ns;
  let cap = capacity t p in
  let cls = class_of_size cap in
  let head = free_head t cls in
  Region.write_int64 t.region (p - header_size + hdr_flags_rel) 0L;
  Region.write_int t.region p head;
  Region.write_int t.region (class_head_off cls) p

(* Root. *)

let root t = Region.read_int t.region root_off

let set_root t p =
  Region.write_int t.region root_off p;
  Region.persist t.region root_off 8

let root_range _t = { off = root_off; len = 8 }

(* Introspection. *)

let data_start _t = data_start_off

let high_water t = bump t

let iter_objects t f =
  let limit = bump t in
  let rec walk off =
    if off < limit then begin
      let off = align16 off in
      if off + header_size <= limit then begin
        let cap = Region.read_int t.region (off + hdr_capacity_rel) in
        let flags = Region.read_int64 t.region (off + hdr_flags_rel) in
        f (off + header_size) ~capacity:cap ~allocated:(flags = 1L);
        walk (off + header_size + cap)
      end
    end
  in
  walk data_start_off

let live_objects t =
  let n = ref 0 in
  iter_objects t (fun _ ~capacity:_ ~allocated -> if allocated then incr n);
  !n

let live_bytes t =
  let n = ref 0 in
  iter_objects t (fun _ ~capacity ~allocated -> if allocated then n := !n + capacity);
  !n

let validate t =
  let error = ref None in
  let fail fmt = Printf.ksprintf (fun s -> if !error = None then error := Some s) fmt in
  let limit = bump t in
  if limit < data_start_off || limit > Region.size t.region then
    fail "bump pointer %d out of range" limit
  else begin
    (* Walk headers. *)
    let rec walk off =
      match !error with
      | Some _ -> ()
      | None ->
          let off = align16 off in
          if off + header_size <= limit then begin
            let cap = Region.read_int t.region (off + hdr_capacity_rel) in
            let flags = Region.read_int64 t.region (off + hdr_flags_rel) in
            if not (is_class_size cap) then
              fail "object at %d has non-class capacity %d" off cap
            else if flags <> 0L && flags <> 1L then
              fail "object at %d has corrupt flags %Ld" off flags
            else walk (off + header_size + cap)
          end
          else if off <> limit && off + header_size > limit then
            (* A partially bumped object would leave a gap; the bump word and
               the header are covered by the same intent so this indicates a
               recovery bug. *)
            fail "object area ends at %d but bump is %d" off limit
    in
    walk data_start_off;
    (* Check the free lists. *)
    if !error = None then
      Array.iteri
        (fun cls _ ->
          let seen = Hashtbl.create 16 in
          let rec follow p steps =
            if !error <> None then ()
            else if p <> null then begin
              if steps > 1_000_000 then fail "free list of class %d too long (cycle?)" cls
              else if Hashtbl.mem seen p then fail "free list of class %d has a cycle at %d" cls p
              else if is_allocated t p then
                fail "free list of class %d contains allocated object %d" cls p
              else begin
                Hashtbl.add seen p ();
                let cap = Region.read_int t.region (p - header_size + hdr_capacity_rel) in
                if cap <> size_classes.(cls) then
                  fail "free list of class %d contains object %d of capacity %d" cls p cap
                else follow (Region.read_int t.region p) (steps + 1)
              end
            end
          in
          follow (free_head t cls) 0)
        size_classes
  end;
  match !error with None -> Ok () | Some e -> Error e
