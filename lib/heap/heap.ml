module Region = Kamino_nvm.Region
module Cost_model = Kamino_nvm.Cost_model

type ptr = int

let null = 0

type range = { off : int; len : int }

(* Metadata block layout (offsets in bytes). *)
let magic_off = 0
let version_off = 8
let size_off = 16
let root_off = 24
let bump_off = 32
let free_heads_off = 64
let data_start_off = 256

let magic_value = 0x4B414D494E4F5458L (* "KAMINOTX" *)
let version_value = 1L

let size_classes =
  [| 32; 64; 128; 256; 512; 1024; 2048; 4096; 8192; 16384; 32768; 65536; 131072; 262144 |]

let n_classes = Array.length size_classes

let max_object_size = size_classes.(n_classes - 1)

let header_size = 16

(* Object header words, relative to the extent start (= ptr - header_size). *)
let hdr_capacity_rel = 0
let hdr_flags_rel = 8

(* Flags word values. Bit 0 = allocated; chained extents set an extra bit so
   a plain [free] cannot silently orphan the rest of a chain. Old images only
   ever contain 0/1, which decode identically under the [land 1] test. *)
let chain_head_flag = 3L
let chain_link_flag = 5L

(* Chain link payload prelude: every link starts with a next pointer; the
   head additionally records the total logical size. *)
let chain_head_meta = 16
let chain_link_meta = 8

let class_of_size size =
  if size <= 0 then invalid_arg "Heap: object size must be positive";
  if size > max_object_size then
    invalid_arg (Printf.sprintf "Heap: object size %d exceeds max %d" size max_object_size);
  let rec find i = if size_classes.(i) >= size then i else find (i + 1) in
  find 0

let is_class_size len = Array.exists (fun c -> c = len) size_classes

let class_head_off cls = free_heads_off + (cls * 8)

(* --- Segment directory and occupancy accounting --------------------------

   Volatile, observability-only state: live objects/bytes, per-class
   occupancy and per-segment live bytes, maintained incrementally on
   alloc/free so [stats] is O(1) in steady state and O(heap) only after the
   allocator was mutated behind our back (crash recovery, abort rollback —
   the engine calls [mark_stats_stale] there). The resync walk uses the
   cost-free [Region.peek_*] reads: turning stats on must not charge a
   single simulated load, or the bit-identity oracles would drift. *)

let seg_shift = 20 (* 1 MiB segments *)

type t = {
  region : Region.t;
  mutable st_valid : bool;
  mutable st_objects : int;
  mutable st_bytes : int;
  mutable st_chained : int;
  st_class : int array; (* live objects per size class *)
  seg_live : int array; (* live extent bytes per segment *)
}

type stats = {
  segments_total : int;
  segments_live : int;
  live_objects : int;
  live_bytes : int;
  chained_objects : int;
  per_class : int array;
}

let mk_t region =
  let segs = max 1 ((Region.size region + (1 lsl seg_shift) - 1) lsr seg_shift) in
  {
    region;
    st_valid = false;
    st_objects = 0;
    st_bytes = 0;
    st_chained = 0;
    st_class = Array.make n_classes 0;
    seg_live = Array.make segs 0;
  }

let class_index cap =
  let rec find i = if i >= n_classes then -1 else if size_classes.(i) = cap then i else find (i + 1) in
  find 0

let account_add t ~extent_off ~cap ~head_of_chain =
  t.st_objects <- t.st_objects + 1;
  t.st_bytes <- t.st_bytes + cap;
  if head_of_chain then t.st_chained <- t.st_chained + 1;
  let c = class_index cap in
  if c >= 0 then t.st_class.(c) <- t.st_class.(c) + 1;
  let s = extent_off lsr seg_shift in
  t.seg_live.(s) <- t.seg_live.(s) + header_size + cap

let account_remove t ~extent_off ~cap ~head_of_chain =
  t.st_objects <- t.st_objects - 1;
  t.st_bytes <- t.st_bytes - cap;
  if head_of_chain then t.st_chained <- t.st_chained - 1;
  let c = class_index cap in
  if c >= 0 then t.st_class.(c) <- t.st_class.(c) - 1;
  let s = extent_off lsr seg_shift in
  t.seg_live.(s) <- t.seg_live.(s) - header_size - cap

let mark_stats_stale t = t.st_valid <- false

let region t = t.region

let charge_cost t ns = Region.charge t.region ns

let align16 n = (n + 15) land lnot 15

(* Cost-free whole-heap walk rebuilding the occupancy directory. Stops at
   anything that does not look like a header so a half-recovered heap cannot
   spin it; the next successful resync (or explicit validate) reports the
   truth. *)
let resync_stats t =
  Array.fill t.st_class 0 n_classes 0;
  Array.fill t.seg_live 0 (Array.length t.seg_live) 0;
  t.st_objects <- 0;
  t.st_bytes <- 0;
  t.st_chained <- 0;
  let limit = Region.peek_int t.region bump_off in
  let limit = min limit (Region.size t.region) in
  let rec walk off =
    let off = align16 off in
    if off + header_size <= limit then begin
      let cap = Region.peek_int t.region (off + hdr_capacity_rel) in
      if cap > 0 && cap <= max_object_size then begin
        let flags = Region.peek_int64 t.region (off + hdr_flags_rel) in
        if Int64.logand flags 1L = 1L then
          account_add t ~extent_off:off ~cap ~head_of_chain:(flags = chain_head_flag);
        walk (off + header_size + cap)
      end
    end
  in
  if limit >= data_start_off then walk data_start_off;
  t.st_valid <- true

let stats t =
  if not t.st_valid then resync_stats t;
  let live = ref 0 in
  Array.iter (fun b -> if b > 0 then incr live) t.seg_live;
  {
    segments_total = Array.length t.seg_live;
    segments_live = !live;
    live_objects = t.st_objects;
    live_bytes = t.st_bytes;
    chained_objects = t.st_chained;
    per_class = Array.copy t.st_class;
  }

let format region =
  if Region.size region < data_start_off + 4096 then
    invalid_arg "Heap.format: region too small";
  let t = mk_t region in
  Region.write_int64 region magic_off magic_value;
  Region.write_int64 region version_off version_value;
  Region.write_int region size_off (Region.size region);
  Region.write_int region root_off null;
  Region.write_int region bump_off data_start_off;
  for cls = 0 to n_classes - 1 do
    Region.write_int region (class_head_off cls) null
  done;
  Region.persist region 0 data_start_off;
  t.st_valid <- true;
  t

(* Streaming allocator rebuild: the caller supplies an iterator over the
   live (ptr, size) set instead of a materialized list, so reattaching a
   dynamic backup with millions of resident copies does not allocate a
   million-element list first. The write sequence per object is identical to
   the list-based [rebuild_with]. *)
let rebuild_via region ~iter =
  let t = mk_t region in
  Region.write_int64 region magic_off magic_value;
  Region.write_int64 region version_off version_value;
  Region.write_int region size_off (Region.size region);
  Region.write_int region root_off null;
  for cls = 0 to n_classes - 1 do
    Region.write_int region (class_head_off cls) null
  done;
  let bump = ref data_start_off in
  iter (fun p size ->
      let cls = class_of_size size in
      let capacity = size_classes.(cls) in
      Region.write_int region (p - header_size + hdr_capacity_rel) capacity;
      Region.write_int64 region (p - header_size + hdr_flags_rel) 1L;
      Region.persist region (p - header_size) header_size;
      account_add t ~extent_off:(p - header_size) ~cap:capacity ~head_of_chain:false;
      bump := max !bump (p + capacity));
  Region.write_int region bump_off !bump;
  Region.persist region 0 data_start_off;
  t.st_valid <- true;
  t

let rebuild_with region ~live =
  rebuild_via region ~iter:(fun f -> List.iter (fun (p, size) -> f p size) live)

let open_existing region =
  if Region.read_int64 region magic_off <> magic_value then
    failwith "Heap.open_existing: bad magic (region was never formatted?)";
  if Region.read_int64 region version_off <> version_value then
    failwith "Heap.open_existing: unsupported heap version";
  mk_t region

(* Allocation. *)

let bump t = Region.read_int t.region bump_off

let free_head t cls = Region.read_int t.region (class_head_off cls)

let alloc_ranges t size =
  let cls = class_of_size size in
  let capacity = size_classes.(cls) in
  let head = free_head t cls in
  if head <> null then
    (* Reuse: the free-list head word and the object extent change. *)
    ( head,
      [
        { off = class_head_off cls; len = 8 };
        { off = head - header_size; len = header_size + capacity };
      ] )
  else begin
    let b = align16 (bump t) in
    let extent_len = header_size + capacity in
    if b + extent_len > Region.size t.region then raise Out_of_memory;
    ( b + header_size,
      [ { off = bump_off; len = 8 }; { off = b; len = extent_len } ] )
  end

let alloc t size =
  let cls = class_of_size size in
  let capacity = size_classes.(cls) in
  charge_cost t (Region.cost_model t.region).Cost_model.alloc_ns;
  let head = free_head t cls in
  let p =
    if head <> null then begin
      (* Pop the free list: the object's first payload word links to the next
         free object of the class. *)
      let next = Region.read_int t.region head in
      Region.write_int t.region (class_head_off cls) next;
      Region.write_int64 t.region (head - header_size + hdr_flags_rel) 1L;
      Region.fill t.region head capacity 0;
      head
    end
    else begin
      let b = align16 (bump t) in
      let extent_len = header_size + capacity in
      if b + extent_len > Region.size t.region then raise Out_of_memory;
      Region.write_int t.region bump_off (b + extent_len);
      Region.write_int t.region (b + hdr_capacity_rel) capacity;
      Region.write_int64 t.region (b + hdr_flags_rel) 1L;
      (* A fresh bump object is already zero, but an object being re-formatted
         after a rollback may not be; zero it for deterministic contents. *)
      Region.fill t.region (b + header_size) capacity 0;
      b + header_size
    end
  in
  if t.st_valid then
    account_add t ~extent_off:(p - header_size) ~cap:capacity ~head_of_chain:false;
  p

let capacity t p =
  if p = null then invalid_arg "Heap.capacity: null pointer";
  Region.read_int t.region (p - header_size + hdr_capacity_rel)

let header_flags t p =
  if p <> null && p >= data_start_off + header_size && p < bump t then
    Region.read_int64 t.region (p - header_size + hdr_flags_rel)
  else 0L

let is_allocated t p = Int64.logand (header_flags t p) 1L = 1L

let extent t p =
  let cap = capacity t p in
  { off = p - header_size; len = header_size + cap }

let free_ranges t p =
  let cap = capacity t p in
  let cls = class_of_size cap in
  [ { off = class_head_off cls; len = 8 }; { off = p - header_size; len = header_size + cap } ]

let free_one t p ~head_of_chain =
  charge_cost t (Region.cost_model t.region).Cost_model.free_ns;
  let cap = capacity t p in
  let cls = class_of_size cap in
  let head = free_head t cls in
  Region.write_int64 t.region (p - header_size + hdr_flags_rel) 0L;
  Region.write_int t.region p head;
  Region.write_int t.region (class_head_off cls) p;
  if t.st_valid then account_remove t ~extent_off:(p - header_size) ~cap ~head_of_chain

let free t p =
  let flags = header_flags t p in
  if Int64.logand flags 1L <> 1L then
    invalid_arg (Printf.sprintf "Heap.free: %d is not an allocated object" p);
  if flags <> 1L then
    invalid_arg
      (Printf.sprintf "Heap.free: %d belongs to a chained extent (use free_chain)" p);
  free_one t p ~head_of_chain:false

(* --- Chained extents ------------------------------------------------------

   Objects larger than [max_object_size] are carved into a linked chain of
   class-sized links: the head stores [next; total] before its data, every
   continuation stores [next]. The link sizes are a pure function of the
   total ([chain_plan]), so predicted ranges, the allocation itself and any
   later walk all agree without consulting the allocator. *)

let chain_plan size =
  if size <= 0 then invalid_arg "Heap: object size must be positive";
  let rec go remaining acc first =
    if remaining <= 0 then List.rev acc
    else begin
      let meta = if first then chain_head_meta else chain_link_meta in
      let data = min remaining (max_object_size - meta) in
      go (remaining - data) ((meta + data) :: acc) false
    end
  in
  go size [] true

let alloc_chain_ranges t size =
  let plan = chain_plan size in
  (* Predict each link's placement by simulating the allocator: free-list
     pops chase the on-NVM next pointers (charged, same words the later
     [alloc] reads), bump allocations advance a local cursor. *)
  let heads = Array.make n_classes (-1) in
  let head_of cls =
    if heads.(cls) < 0 then heads.(cls) <- free_head t cls;
    heads.(cls)
  in
  let bump_sim = ref (-1) in
  let bump_of () =
    if !bump_sim < 0 then bump_sim := bump t;
    !bump_sim
  in
  let ptrs = ref [] and ranges = ref [] in
  List.iter
    (fun link_size ->
      let cls = class_of_size link_size in
      let cap = size_classes.(cls) in
      let h = head_of cls in
      if h <> null then begin
        ptrs := h :: !ptrs;
        ranges :=
          { off = h - header_size; len = header_size + cap }
          :: { off = class_head_off cls; len = 8 }
          :: !ranges;
        heads.(cls) <- Region.read_int t.region h
      end
      else begin
        let b = align16 (bump_of ()) in
        let extent_len = header_size + cap in
        if b + extent_len > Region.size t.region then raise Out_of_memory;
        ptrs := (b + header_size) :: !ptrs;
        ranges := { off = b; len = extent_len } :: { off = bump_off; len = 8 } :: !ranges;
        bump_sim := b + extent_len
      end)
    plan;
  (List.rev !ptrs, List.rev !ranges)

let alloc_chain t size =
  let plan = chain_plan size in
  let links = List.map (fun link_size -> alloc t link_size) plan in
  (* Wire the chain back-to-front so every next pointer is written exactly
     once; all writes land inside the extents the caller declared. *)
  let rec wire = function
    | [] -> ()
    | [ last ] ->
        Region.write_int t.region last null
    | a :: (b :: _ as rest) ->
        wire rest;
        Region.write_int t.region a b
  in
  wire links;
  let head = List.hd links in
  Region.write_int64 t.region (head - header_size + hdr_flags_rel) chain_head_flag;
  List.iter
    (fun p ->
      if p <> head then Region.write_int64 t.region (p - header_size + hdr_flags_rel) chain_link_flag)
    links;
  Region.write_int t.region (head + chain_link_meta) size;
  if t.st_valid then t.st_chained <- t.st_chained + 1;
  head

let chain_links t p =
  let flags = header_flags t p in
  if flags <> chain_head_flag then
    invalid_arg (Printf.sprintf "Heap.chain_links: %d is not a chain head" p);
  let total = Region.read_int t.region (p + chain_link_meta) in
  let rec go p remaining first acc =
    let meta = if first then chain_head_meta else chain_link_meta in
    let data = min remaining (max_object_size - meta) in
    let acc = (p, meta, data) :: acc in
    let remaining = remaining - data in
    if remaining <= 0 then List.rev acc
    else go (Region.read_int t.region p) remaining false acc
  in
  go p total true []

let chain_size t p =
  let flags = header_flags t p in
  if flags <> chain_head_flag then
    invalid_arg (Printf.sprintf "Heap.chain_size: %d is not a chain head" p);
  Region.read_int t.region (p + chain_link_meta)

let free_chain_ranges t p =
  List.concat_map (fun (lp, _, _) -> free_ranges t lp) (chain_links t p)

let free_chain t p =
  let links = chain_links t p in
  List.iteri
    (fun i (lp, _, _) -> free_one t lp ~head_of_chain:(i = 0))
    links

(* Root. *)

let root t = Region.read_int t.region root_off

let set_root t p =
  Region.write_int t.region root_off p;
  Region.persist t.region root_off 8

let root_range _t = { off = root_off; len = 8 }

(* Introspection. *)

let data_start _t = data_start_off

let high_water t = bump t

let iter_objects t f =
  let limit = bump t in
  let rec walk off =
    if off < limit then begin
      let off = align16 off in
      if off + header_size <= limit then begin
        let cap = Region.read_int t.region (off + hdr_capacity_rel) in
        let flags = Region.read_int64 t.region (off + hdr_flags_rel) in
        f (off + header_size) ~capacity:cap ~allocated:(Int64.logand flags 1L = 1L);
        walk (off + header_size + cap)
      end
    end
  in
  walk data_start_off

let live_objects t =
  let n = ref 0 in
  iter_objects t (fun _ ~capacity:_ ~allocated -> if allocated then incr n);
  !n

let live_bytes t =
  let n = ref 0 in
  iter_objects t (fun _ ~capacity ~allocated -> if allocated then n := !n + capacity);
  !n

let validate t =
  let error = ref None in
  let fail fmt = Printf.ksprintf (fun s -> if !error = None then error := Some s) fmt in
  let limit = bump t in
  if limit < data_start_off || limit > Region.size t.region then
    fail "bump pointer %d out of range" limit
  else begin
    (* Walk headers. *)
    let rec walk off =
      match !error with
      | Some _ -> ()
      | None ->
          let off = align16 off in
          if off + header_size <= limit then begin
            let cap = Region.read_int t.region (off + hdr_capacity_rel) in
            let flags = Region.read_int64 t.region (off + hdr_flags_rel) in
            if not (is_class_size cap) then
              fail "object at %d has non-class capacity %d" off cap
            else if
              flags <> 0L && flags <> 1L && flags <> chain_head_flag
              && flags <> chain_link_flag
            then fail "object at %d has corrupt flags %Ld" off flags
            else walk (off + header_size + cap)
          end
          else if off <> limit && off + header_size > limit then
            (* A partially bumped object would leave a gap; the bump word and
               the header are covered by the same intent so this indicates a
               recovery bug. *)
            fail "object area ends at %d but bump is %d" off limit
    in
    walk data_start_off;
    (* Check the free lists. *)
    if !error = None then
      Array.iteri
        (fun cls _ ->
          let seen = Hashtbl.create 16 in
          let rec follow p steps =
            if !error <> None then ()
            else if p <> null then begin
              if steps > 1_000_000 then fail "free list of class %d too long (cycle?)" cls
              else if Hashtbl.mem seen p then fail "free list of class %d has a cycle at %d" cls p
              else if is_allocated t p then
                fail "free list of class %d contains allocated object %d" cls p
              else begin
                Hashtbl.add seen p ();
                let cap = Region.read_int t.region (p - header_size + hdr_capacity_rel) in
                if cap <> size_classes.(cls) then
                  fail "free list of class %d contains object %d of capacity %d" cls p cap
                else follow (Region.read_int t.region p) (steps + 1)
              end
            end
          in
          follow (free_head t cls) 0)
        size_classes
  end;
  match !error with None -> Ok () | Some e -> Error e
