(** Persistent object heap over a simulated NVM region.

    The heap is the paper's "persistent heap manager": applications allocate
    and free objects, store native values and persistent pointers in them,
    and name one object as the root. An object is addressed by a [ptr] — the
    NVM offset of its payload; persistent pointers are just such offsets
    stored as int64 fields, so they remain valid across crashes and reopens.

    Allocator metadata (bump pointer, per-class free-list heads) lives in
    NVM and is modified {e through transactions}, exactly as in the paper:
    the heap itself performs raw writes, and the transaction engines declare
    write intents on the word ranges reported by {!alloc_ranges} /
    {!free_ranges} before invoking {!alloc} / {!free}, so aborts and crashes
    roll the allocator back together with the data.

    Layout: a 256-byte metadata block (magic, version, size, root, bump
    pointer, free-list heads) followed by the object area. Each object has a
    16-byte header (capacity, allocated flag) in front of its payload. *)

type t

(** A persistent pointer: the NVM offset of an object's payload.
    [null] (= 0) points nowhere. *)
type ptr = int

val null : ptr

(** Size classes available to the allocator, in bytes. Requests are rounded
    up to the next class. *)
val size_classes : int array

(** Largest allocatable payload. *)
val max_object_size : int

(** [format region] initializes a fresh heap in [region] and persists the
    metadata block. Raises [Invalid_argument] if the region is too small. *)
val format : Kamino_nvm.Region.t -> t

(** [open_existing region] attaches to a previously formatted heap, e.g.
    after a crash. Raises [Failure] if the magic number does not match. *)
val open_existing : Kamino_nvm.Region.t -> t

(** [rebuild_with region ~live] re-creates a consistent allocator state
    from an external source of truth, preserving object payloads: every
    [(ptr, size)] in [live] becomes an allocated object (capacity = the
    size's class), free lists are emptied, and the bump pointer is placed
    past the last live object. Used by the dynamic backup, whose slot
    allocator is volatile — the persistent look-up table is authoritative
    and the allocator is reconstructed from it after a crash. Space that
    was free before the crash and is not covered by [live] is reclaimed or
    leaked until the next rebuild; payload bytes of live objects are not
    touched. *)
val rebuild_with : Kamino_nvm.Region.t -> live:(ptr * int) list -> t

(** [rebuild_via region ~iter] — streaming {!rebuild_with}: [iter f] must
    call [f ptr size] once per live object. The write sequence per object is
    identical to [rebuild_with]; the difference is purely volatile — no
    intermediate list of the live set is materialized, which is what keeps
    reattaching a dynamic backup with millions of resident copies
    allocation-lean. *)
val rebuild_via : Kamino_nvm.Region.t -> iter:((ptr -> int -> unit) -> unit) -> t

val region : t -> Kamino_nvm.Region.t

(** {1 Allocation} *)

(** A contiguous NVM byte range, as reported to transaction engines for
    write-intent declaration. *)
type range = { off : int; len : int }

(** [alloc_ranges t size] returns [(p, ranges)] where [p] is the pointer the
    next [alloc t size] call will return and [ranges] are the allocator
    metadata words plus the object extent that the allocation will modify.
    It performs no mutation: engines snapshot/declare the ranges, then call
    {!alloc}. Raises [Out_of_memory] when the heap is exhausted and
    [Invalid_argument] for sizes above {!max_object_size}. *)
val alloc_ranges : t -> int -> ptr * range list

(** [alloc t size] allocates an object with at least [size] payload bytes
    and returns its pointer. The payload is zeroed. *)
val alloc : t -> int -> ptr

(** [free_ranges t p] returns the ranges {!free} will modify. *)
val free_ranges : t -> ptr -> range list

(** [free t p] returns [p]'s object to its size-class free list.
    Raises [Invalid_argument] if [p] is not an allocated object. *)
val free : t -> ptr -> unit

(** {1 Chained extents}

    Objects larger than {!max_object_size} are stored as a chain of
    class-sized links. The head link's payload starts with
    [[next: 8][total: 8]] before its data; every continuation starts with
    [[next: 8]]. Link sizes are a pure function of the total, so predicted
    ranges, the allocation and later walks agree without consulting the
    allocator. Chain members carry distinct header flags: {!free} refuses
    them ([free_chain] owns the whole chain) and {!is_allocated} still
    answers true. *)

(** [alloc_chain_ranges t size] — like {!alloc_ranges} for a chained
    allocation: [(link_ptrs, ranges)] covering every link's extent plus the
    allocator words each link will touch. No mutation. *)
val alloc_chain_ranges : t -> int -> ptr list * range list

(** [alloc_chain t size] allocates the chain and wires next pointers, head
    flags and the stored total; returns the head pointer. The caller must
    have declared [alloc_chain_ranges] first (engines do). *)
val alloc_chain : t -> int -> ptr

(** [chain_links t p] — [(link_ptr, data_rel, data_len)] per link in chain
    order: the payload bytes of link [i] live at
    [link_ptr + data_rel .. + data_len). Raises [Invalid_argument] unless
    [p] is a chain head. *)
val chain_links : t -> ptr -> (ptr * int * int) list

(** [chain_size t p] — the logical byte size the chain was allocated with. *)
val chain_size : t -> ptr -> int

(** [free_chain_ranges t p] returns the ranges {!free_chain} will modify. *)
val free_chain_ranges : t -> ptr -> range list

(** [free_chain t p] frees every link of the chain headed at [p]. *)
val free_chain : t -> ptr -> unit

(** [capacity t p] is the usable payload size of object [p] (for a chain
    head: of that link only — see {!chain_size} for the logical size). *)
val capacity : t -> ptr -> int

(** [extent t p] is the byte range covering [p]'s header and payload — what
    engines copy when rolling the object forward or back. *)
val extent : t -> ptr -> range

(** [is_allocated t p] — used by validation and tests. *)
val is_allocated : t -> ptr -> bool

(** {1 Root object} *)

val root : t -> ptr

(** [set_root t p] updates and persists the root pointer. The root pointer
    update is a single 8-byte atomic store, so it is crash-safe by itself. *)
val set_root : t -> ptr -> unit

(** [root_range t] is the range engines declare when a transaction changes
    the root. *)
val root_range : t -> range

(** {1 Introspection} *)

(** Occupancy snapshot from the volatile segment directory. Maintained
    incrementally by alloc/free; rebuilt lazily (cost-free, via
    [Region.peek_*]) after the allocator was mutated outside the normal
    paths — crash recovery or abort rollback, where the engine calls
    {!mark_stats_stale}. Reading stats never charges simulated cost, so
    metric gauges built on it cannot perturb the bit-identity oracles. *)
type stats = {
  segments_total : int;  (** 1 MiB segments covering the region *)
  segments_live : int;  (** segments holding at least one live byte *)
  live_objects : int;
  live_bytes : int;  (** sum of live payload capacities *)
  chained_objects : int;  (** chain heads (logical large objects) *)
  per_class : int array;  (** live objects per entry of {!size_classes} *)
}

val stats : t -> stats

(** Invalidate the incremental occupancy directory; the next {!stats} call
    resynchronizes with a cost-free heap walk. *)
val mark_stats_stale : t -> unit

(** [live_objects t] counts currently allocated objects (walks the heap). *)
val live_objects : t -> int

(** [live_bytes t] sums payload capacities of allocated objects. *)
val live_bytes : t -> int

(** [data_start t] and [high_water t] delimit the object area in use;
    engines use them for whole-heap copies (backup initialization). *)
val data_start : t -> int

val high_water : t -> int

(** [validate t] walks every object header and checks structural invariants
    (capacity is a known class, flags are 0/1, extents chain exactly to the
    bump pointer, free lists only contain free objects). Returns an error
    description instead of raising, so recovery tests can assert on it. *)
val validate : t -> (unit, string) result

(** [iter_objects t f] calls [f ptr ~capacity ~allocated] for every object
    slot in address order. *)
val iter_objects : t -> (ptr -> capacity:int -> allocated:bool -> unit) -> unit
