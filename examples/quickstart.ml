(* Quickstart: the Kamino-Tx programming model in one file.

   Mirrors the paper's Figure 10 (NVML-style transaction): declare write
   intents, edit objects in place, commit — then demonstrate what the
   library is actually for by crashing the "machine" mid-transaction and
   recovering.

     dune exec examples/quickstart.exe *)

module Engine = Kamino_core.Engine

let () =
  (* Build a Kamino-Tx-Simple stack: main heap, intent log, full backup. *)
  let engine = Engine.create ~kind:Engine.Kamino_simple ~seed:1 () in

  (* struct ObjectType1 { char attr[255]; };
     struct ObjectType2 { int attr; };           (Figure 10) *)
  let obj1, obj2 =
    Engine.with_tx engine (fun tx ->
        let obj1 = Engine.alloc tx 255 in
        let obj2 = Engine.alloc tx 8 in
        Engine.set_root tx obj1;
        (obj1, obj2))
  in

  (* TX_BEGIN { TX_ADD(obj1); TX_ADD(obj2); ... } TX_END *)
  Engine.with_tx engine (fun tx ->
      Engine.add tx obj1;
      Engine.add tx obj2;
      Engine.write_string tx obj1 0 "NewValue";
      Engine.write_int tx obj2 0 (String.length "NewValue"));
  Printf.printf "committed: obj1=%S obj2=%d\n"
    (Engine.peek_string engine obj1 0 8)
    (Engine.peek_int engine obj2 0);

  (* An abort rolls the heap back from the backup — no undo log involved. *)
  let tx = Engine.begin_tx engine in
  Engine.add tx obj1;
  Engine.write_string tx obj1 0 "Mistake!";
  Engine.abort tx;
  Printf.printf "after abort: obj1=%S (unchanged)\n" (Engine.peek_string engine obj1 0 8);

  (* Crash in the middle of a transaction: the in-place edits may be
     half-persisted, but recovery rolls them back from the backup using the
     intent log. *)
  let tx = Engine.begin_tx engine in
  Engine.add tx obj1;
  Engine.write_string tx obj1 0 "Torn write in progress...";
  Engine.crash engine;
  Engine.recover engine;
  Printf.printf "after crash + recovery: obj1=%S (rolled back)\n"
    (Engine.peek_string engine obj1 0 8);

  (* The engine keeps running after recovery. *)
  Engine.with_tx engine (fun tx ->
      Engine.add tx obj1;
      Engine.write_string tx obj1 0 "Durable!");
  Engine.crash engine;
  Engine.recover engine;
  Printf.printf "committed data survives the next crash: obj1=%S\n"
    (Engine.peek_string engine obj1 0 8);

  Engine.drain_backup engine;
  let m = Engine.metrics engine in
  Printf.printf
    "stats: %d committed, %d aborted, %d backup propagations, 0 copies in the critical path\n"
    m.Engine.committed m.Engine.aborted m.Engine.applier_tasks
