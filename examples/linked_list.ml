(* The paper's running example (Figure 4): a persistent doubly-linked list
   whose operations are multi-object transactions, under fire from random
   crash injection — comparing all four atomic engine kinds.

     dune exec examples/linked_list.exe *)

module Engine = Kamino_core.Engine
module Backup = Kamino_core.Backup
module Plist = Kamino_index.Plist
module Rng = Kamino_sim.Rng
module Clock = Kamino_sim.Clock

let kinds =
  [
    Engine.Undo_logging;
    Engine.Cow;
    Engine.Kamino_simple;
    Engine.Kamino_dynamic { alpha = 0.3; policy = Backup.Lru_policy };
  ]

let run kind =
  let engine = Engine.create ~kind ~seed:7 () in
  let list =
    Engine.with_tx engine (fun tx ->
        let l = Plist.create tx in
        Engine.set_root tx (Plist.handle l);
        l)
  in
  let list = ref list in
  let rng = Rng.create 42 in
  let crashes = ref 0 in
  let t0 = Engine.now engine in
  for round = 1 to 2000 do
    let key = Rng.int rng 100 in
    Engine.with_tx engine (fun tx ->
        match Rng.int rng 3 with
        | 0 -> ignore (Plist.insert tx !list ~key ~value:(float_of_int round))
        | 1 -> ignore (Plist.delete tx !list ~key)
        | _ -> ignore (Plist.update tx !list ~key ~value:(float_of_int round)));
    (* Pull the plug now and then. *)
    if Rng.int rng 200 = 0 then begin
      incr crashes;
      Engine.crash engine;
      Engine.recover engine;
      list := Plist.attach engine (Engine.root engine);
      match Plist.validate !list with
      | Ok () -> ()
      | Error e -> failwith ("list corrupted after crash: " ^ e)
    end
  done;
  (match Plist.validate !list with
  | Ok () -> ()
  | Error e -> failwith ("final validation failed: " ^ e));
  let m = Engine.metrics engine in
  Printf.printf
    "%-22s  %4d nodes survive, %d crashes, %5.2f ms simulated, %d critical-path copies\n"
    (Engine.kind_name kind) (Plist.length !list) !crashes
    (float_of_int (Engine.now engine - t0) /. 1e6)
    m.Engine.critical_path_copies

let () =
  Printf.printf
    "Persistent doubly-linked list (Figure 4): 2000 random transactions + crash injection\n\n";
  List.iter run kinds;
  Printf.printf
    "\nNote the simulated-time column: the engines do identical structural work, the\n\
     difference is what each one copies (and flushes) to stay atomic.\n"
