(* Kamino-Tx-Chain (§5) end to end: a replicated key-value store that
   tolerates f = 2 failures with in-place updates at every replica, then a
   guided tour of the failure protocols — fail-stop repair, head promotion,
   and quick-reboot recovery from a chain neighbour.

     dune exec examples/replicated_chain.exe *)

module Engine = Kamino_core.Engine
module Chain = Kamino_chain.Chain
module Kv = Kamino_kv.Kv

let show c msg =
  (match Chain.replicas_consistent c with
  | Ok () ->
      Printf.printf "%-46s %d replicas, consistent, %.0f MB cluster NVM\n" msg
        (Chain.length c)
        (float_of_int (Chain.storage_bytes c) /. 1e6)
  | Error e -> Printf.printf "%-46s INCONSISTENT: %s\n" msg e)

let () =
  let c =
    Chain.create
      ~engine_config:{ Engine.default_config with Engine.heap_bytes = 4 * 1024 * 1024 }
      ~mode:(Chain.Kamino_chain { alpha = None })
      ~f:2 ~value_size:256 ~node_size:512 ~seed:21 ()
  in
  Printf.printf "Kamino-Tx-Chain, f=2: %d replicas (f+2); traditional would use 3 with\n"
    (Chain.length c);
  Printf.printf "per-replica copies — here only the head keeps a backup.\n\n";

  (* Normal operation. *)
  let at = ref 0 in
  for k = 0 to 199 do
    at := Chain.put c ~at:!at k (Printf.sprintf "value-%03d" k)
  done;
  show c "200 writes through the chain:";
  let v, t = Chain.get c ~at:!at 42 in
  at := t;
  Printf.printf "  read at tail: key 42 = %s\n\n" (Option.value v ~default:"<missing>");

  (* Aborts are local to the head: nothing enters the chain. *)
  let t = Chain.put_aborted c ~at:!at 42 "aborted-write" in
  at := t;
  let v, t = Chain.get c ~at:!at 42 in
  at := t;
  show c "aborted write (local to the head):";
  Printf.printf "  key 42 is still %s\n\n" (Option.value v ~default:"<missing>");

  (* Quick reboot of a middle replica with an incomplete transaction: §5.3
     says it rolls forward from its predecessor. *)
  let mid_kv = Chain.kv_at c 2 in
  let mid_engine = Kv.engine mid_kv in
  let vptr = Option.get (Kv.value_ptr mid_kv 7) in
  let tx = Engine.begin_tx mid_engine in
  Engine.add tx vptr;
  Engine.write_string tx vptr 8 "torn!torn!torn!";
  (* no commit: the replica dies with the transaction in flight *)
  Chain.quick_reboot c 2;
  show c "replica 2 quick-rebooted mid-transaction:";
  Printf.printf "\n";

  (* Fail-stop of the tail, then of the head (which promotes replica 1 and
     builds it a backup). *)
  Chain.fail_stop c 3;
  at := Chain.put c ~at:!at 500 "after tail failure";
  show c "tail failed and removed:";
  Chain.fail_stop c 0;
  at := Chain.put c ~at:!at 501 "after head failure";
  let _ = Chain.put_aborted c ~at:!at 501 "abort on new head" in
  show c "head failed; replica promoted (new backup):";
  Printf.printf "\n";

  let v, _ = Chain.get c ~at:!at 501 in
  Printf.printf "final read through the repaired chain: key 501 = %s\n"
    (Option.value v ~default:"<missing>")
