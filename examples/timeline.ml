(* Figures 2/5/6, measured: the phase-by-phase timeline of one update
   transaction under each atomicity mechanism, in simulated nanoseconds.

   The paper's argument is exactly this picture — undo-like techniques put
   the copy before the edit, CoW-like techniques put it after, Kamino-Tx
   moves it off the critical path entirely (the unlock happens later, but
   the client's tx_end does not wait for it unless a dependent transaction
   arrives).

     dune exec examples/timeline.exe *)

module Engine = Kamino_core.Engine
module Applier = Kamino_core.Applier
module Clock = Kamino_sim.Clock

let object_size = 1024

let bar label ns total =
  let width = 52 in
  let n = max 0 (min width (ns * width / max total 1)) in
  Printf.printf "    %-26s %6d ns  %s\n" label ns (String.make n '#')

let run kind =
  let e = Engine.create ~kind ~seed:8 () in
  let clock = Engine.clock e in
  let p =
    Engine.with_tx e (fun tx ->
        let p = Engine.alloc tx object_size in
        Engine.write_int64 tx p 0 0L;
        p)
  in
  Engine.drain_backup e;
  (* Space out from the warm-up so nothing is pending. *)
  Clock.advance clock 100_000;

  let t0 = Clock.now clock in
  let tx = Engine.begin_tx e in
  let t_begin = Clock.now clock in
  Engine.add tx p;
  let t_add = Clock.now clock in
  for w = 0 to (object_size / 8) - 1 do
    Engine.write_int64 tx p (w * 8) 42L
  done;
  let t_edit = Clock.now clock in
  Engine.commit tx;
  let t_commit = Clock.now clock in
  let sync_at =
    match Engine.applier e with Some a -> Applier.virtual_now a | None -> t_commit
  in
  let total = t_commit - t0 in
  Printf.printf "%s — critical path %d ns\n" (Engine.kind_name kind) total;
  bar "tx_begin" (t_begin - t0) total;
  bar "TX_ADD (declare/copy)" (t_add - t_begin) total;
  bar "edit 1 KB" (t_edit - t_add) total;
  bar "tx_commit (persist)" (t_commit - t_edit) total;
  if sync_at > t_commit then
    Printf.printf "    %-26s +%d ns after commit, OFF the critical path\n"
      "backup catch-up" (sync_at - t_commit);
  Printf.printf "\n"

let () =
  Printf.printf
    "One 1 KB-object update transaction, phase by phase (cf. the paper's Figure 5)\n\n";
  List.iter run
    [ Engine.Undo_logging; Engine.Cow; Engine.Kamino_simple; Engine.No_logging ]
