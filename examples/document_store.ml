(* A MongoDB-flavoured document store — the paper's §1 granularity
   motivation made concrete: "in a document store, an entire document is
   typically logged though each operation might only change a few
   byte-ranges within the document".

   Documents are 4 KB persistent objects (16 fields x 248 B) indexed by a
   B+Tree. Field updates run three ways:

     1. undo-logging with whole-document TX_ADD (what MongoDB-style logging
        does),
     2. undo-logging with field-granular TX_ADD_FIELD (fine-grained
        logging: less bandwidth, same per-entry instruction overhead),
     3. Kamino-Tx (nothing copied in the critical path either way).

     dune exec examples/document_store.exe *)

module Engine = Kamino_core.Engine
module Btree = Kamino_index.Btree
module Rng = Kamino_sim.Rng
module Clock = Kamino_sim.Clock

let n_fields = 16

let field_size = 248

let doc_size = (n_fields * field_size) + 8 (* + version header *)

let field_off i = 8 + (i * field_size)

type store = { engine : Engine.t; index : Btree.t }

let create_store kind =
  let engine =
    Engine.create
      ~config:{ Engine.default_config with Engine.heap_bytes = 32 * 1024 * 1024 }
      ~kind ~seed:3 ()
  in
  let index =
    Engine.with_tx engine (fun tx ->
        let t = Btree.create tx ~node_size:4096 in
        Engine.set_root tx (Btree.descriptor t);
        t)
  in
  { engine; index }

let insert_doc s id =
  Engine.with_tx s.engine (fun tx ->
      let doc = Engine.alloc tx doc_size in
      Engine.write_int tx doc 0 0;
      for f = 0 to n_fields - 1 do
        Engine.write_string tx doc (field_off f) (Printf.sprintf "doc%d.field%d" id f)
      done;
      ignore (Btree.insert tx s.index id doc))

(* Update two fields of one document. *)
let update_fields s id ~granularity round =
  Engine.with_tx s.engine (fun tx ->
      match Btree.find_tx tx s.index id with
      | None -> ()
      | Some doc ->
          let f1 = round mod n_fields and f2 = (round * 7) mod n_fields in
          (match granularity with
          | `Whole_document -> Engine.add tx doc
          | `Fields ->
              Engine.add_field tx doc 0 8;
              Engine.add_field tx doc (field_off f1) field_size;
              if f2 <> f1 then Engine.add_field tx doc (field_off f2) field_size);
          Engine.write_int tx doc 0 round;
          Engine.write_string tx doc (field_off f1) (Printf.sprintf "v%d" round);
          Engine.write_string tx doc (field_off f2) (Printf.sprintf "w%d" round))

let read_field s id f =
  match Btree.find s.index id with
  | None -> None
  | Some doc -> Some (Engine.peek_string s.engine doc (field_off f) 8)

let run kind granularity label =
  let s = create_store kind in
  let rng = Rng.create 9 in
  let docs = 200 in
  for id = 0 to docs - 1 do
    insert_doc s id
  done;
  Engine.drain_backup s.engine;
  let rounds = 3000 in
  let t0 = Engine.now s.engine in
  for round = 1 to rounds do
    update_fields s (Rng.int rng docs) ~granularity round;
    (* readers interleave *)
    if round mod 4 = 0 then ignore (read_field s (Rng.int rng docs) (round mod n_fields))
  done;
  let per_op = float_of_int (Engine.now s.engine - t0) /. float_of_int rounds /. 1000.0 in
  Printf.printf "%-44s %6.2f us/update\n" label per_op

let () =
  Printf.printf
    "Document store: 200 x 4 KB documents, updates touch 2 of 16 fields (~0.5 KB of 4 KB)\n\n";
  run Engine.Undo_logging `Whole_document "undo-logging, whole-document TX_ADD";
  run Engine.Undo_logging `Fields "undo-logging, field-granular TX_ADD_FIELD";
  run Engine.Kamino_simple `Whole_document "kamino-tx, whole-document intents";
  run Engine.Kamino_simple `Fields "kamino-tx, field-granular intents";
  Printf.printf
    "\nFine-grained logging saves bandwidth but keeps the per-copy instruction overhead\n\
     (allocate, index, deallocate) — the paper's §1 point. Kamino-Tx sidesteps the\n\
     trade-off: intents are addresses, not copies, at either granularity.\n"
