(* A condensed version of the paper's core result: run YCSB-A over the
   key-value store with every engine kind and compare latency, throughput
   and NVM storage footprint — the latency/storage trade-off of §4 in one
   table.

     dune exec examples/ycsb_comparison.exe *)

module Engine = Kamino_core.Engine
module Backup = Kamino_core.Backup
module Kv = Kamino_kv.Kv
module Ycsb = Kamino_workload.Ycsb
module Driver = Kamino_workload.Driver
module Rng = Kamino_sim.Rng

let records = 5_000

let ops = 5_000

let value_size = 1024

let config =
  {
    Engine.default_config with
    Engine.heap_bytes = 24 * 1024 * 1024;
    log_slots = 256;
    data_log_bytes = 8 * 1024 * 1024;
  }

let kinds =
  [
    Engine.Undo_logging;
    Engine.Cow;
    Engine.Kamino_dynamic { alpha = 0.2; policy = Backup.Lru_policy };
    Engine.Kamino_dynamic { alpha = 0.5; policy = Backup.Lru_policy };
    Engine.Kamino_simple;
  ]

let run kind =
  let engine = Engine.create ~config ~kind ~seed:11 () in
  let kv = Kv.create engine ~value_size ~node_size:4096 in
  let payload = String.make (value_size - 16) 'v' in
  for k = 0 to records - 1 do
    Kv.put kv k payload
  done;
  Engine.drain_backup engine;
  let wl = Ycsb.create Ycsb.A ~record_count:records ~theta:0.99 in
  let rng = Rng.create 5 in
  let result =
    Driver.run ~engine ~clients:4 ~total_ops:ops ~step:(fun ~client:_ () ->
        match Ycsb.next wl rng with
        | Ycsb.Read k ->
            ignore (Kv.get kv k);
            "read"
        | Ycsb.Update k | Ycsb.Insert k ->
            Kv.put kv k payload;
            "update"
        | Ycsb.Scan (k, n) ->
            ignore (Kv.scan kv ~lo:k ~count:n (fun _ _ -> ()));
            "scan"
        | Ycsb.Rmw k ->
            ignore (Kv.read_modify_write kv k Fun.id);
            "rmw")
  in
  let m = Engine.metrics engine in
  Printf.printf "%-22s  %7.2f us  %8.3f M ops/s  %5.1f MB NVM  %6d critical-path copies\n"
    (Engine.kind_name kind)
    (result.Driver.mean_latency_ns /. 1000.)
    result.Driver.throughput_mops
    (float_of_int m.Engine.storage_bytes /. 1e6)
    (m.Engine.critical_path_copies + m.Engine.backup_misses)

let () =
  Printf.printf "YCSB-A (50%% reads / 50%% updates), %d x %d B records, 4 clients\n\n" records
    value_size;
  Printf.printf "%-22s  %10s  %14s  %9s  %s\n" "engine" "latency" "throughput" "storage"
    "copies in critical path";
  List.iter run kinds;
  Printf.printf
    "\nKamino-Tx trades NVM capacity for critical-path copying; the dynamic variants let\n\
     you pick a point between the undo baseline and the full backup (Figures 14-16).\n"
