(* One function per paper figure/table, each printing the same rows/series
   the paper reports (simulated-time units). EXPERIMENTS.md records the
   paper-vs-measured comparison for every experiment here. *)

open Common
module Engine = Kamino_core.Engine
module Backup = Kamino_core.Backup
module Heap = Kamino_heap.Heap
module Stats = Kamino_sim.Stats
module Clock = Kamino_sim.Clock
module Rng = Kamino_sim.Rng
module Kv = Kamino_kv.Kv
module Ycsb = Kamino_workload.Ycsb
module Driver = Kamino_workload.Driver
module Chain = Kamino_chain.Chain
module Cost_model = Kamino_nvm.Cost_model

let ycsb_workloads = [ Ycsb.A; Ycsb.B; Ycsb.C; Ycsb.D; Ycsb.F ]

let kops r = r.Driver.throughput_mops *. 1000.0

(* --- Figure 1: logging overhead motivation ------------------------------- *)

(* The paper's Figure 1 measures MySQL, where SQL-layer processing
   dominates each operation and logging adds 50-250%. We charge a fixed
   SQL-processing stand-in per operation on top of the storage-engine work
   so logging is a comparable *fraction* of the op. *)
let sql_layer_ns = 5000

let fig1 p =
  header
    "Figure 1: YCSB + TPC-C throughput, no-logging vs undo-logging (K ops/sec, 4 clients, \
     MySQL-like SQL layer)";
  let engines = [ ("No Logging", Engine.No_logging); ("Undo-Logging", Engine.Undo_logging) ] in
  let with_sql e r = ignore e; r in
  let run_kv kind wl =
    let kv = make_store p kind in
    let e = Kv.engine kv in
    let wlgen = Ycsb.create wl ~record_count:p.record_count ~theta:p.theta in
    let rng = Kamino_sim.Rng.create 515 in
    let step ~client:_ () =
      Clock.advance (Engine.clock e) sql_layer_ns;
      match Ycsb.next wlgen rng with
      | Ycsb.Read k ->
          ignore (Kv.get kv k);
          "read"
      | Ycsb.Update k | Ycsb.Insert k ->
          Kv.put kv k (value_for p k);
          "write"
      | Ycsb.Scan (k, n) ->
          ignore (Kv.range kv ~lo:k ~hi:(k + n));
          "scan"
      | Ycsb.Rmw k ->
          ignore (Kv.read_modify_write kv k (fun s -> s));
          "rmw"
    in
    with_sql e (Driver.run ~engine:e ~clients:4 ~total_ops:p.ops ~step)
  in
  let run_tpcc_sql kind =
    let e = Engine.create ~config:(engine_config p) ~kind ~seed:4242 () in
    let rng = Kamino_sim.Rng.create 616 in
    let t =
      Kamino_workload.Tpcc.setup e ~warehouses:2 ~districts_per_w:10
        ~customers_per_district:60 ~items:1000 ~rng
    in
    let step ~client:_ () =
      Clock.advance (Engine.clock e) (10 * sql_layer_ns);
      Kamino_workload.Tpcc.kind_name (Kamino_workload.Tpcc.run_mix t rng)
    in
    Driver.run ~engine:e ~clients:4 ~total_ops:p.tpcc_txs ~step
  in
  let rows =
    List.map
      (fun wl ->
        let cells = List.map (fun (_, kind) -> f1 (kops (run_kv kind wl))) engines in
        ("YCSB-" ^ Ycsb.name wl) :: cells)
      ycsb_workloads
    @ [ ("TPC-C" :: List.map (fun (_, kind) -> f1 (kops (run_tpcc_sql kind))) engines) ]
  in
  print_table ~cols:([ "workload" ] @ List.map fst engines) rows

(* --- Figure 12: YCSB throughput, Kamino-Tx-Simple vs undo, 2/4/8 threads - *)

let fig12 p =
  header "Figure 12: YCSB throughput (M ops/sec) as client threads vary";
  let cols =
    [ "workload" ]
    @ List.concat_map
        (fun n -> [ Printf.sprintf "Kamino(%d)" n; Printf.sprintf "Undo(%d)" n ])
        [ 2; 4; 8 ]
  in
  let rows =
    List.map
      (fun wl ->
        let cells =
          List.concat_map
            (fun clients ->
              let k = make_store p Engine.Kamino_simple in
              let kam = (run_ycsb p k wl ~clients).Driver.throughput_mops in
              let u = make_store p Engine.Undo_logging in
              let undo = (run_ycsb p u wl ~clients).Driver.throughput_mops in
              [ f3 kam; f3 undo ])
            [ 2; 4; 8 ]
        in
        ("YCSB-" ^ Ycsb.name wl) :: cells)
      ycsb_workloads
  in
  print_table ~cols rows

(* --- Figure 13: YCSB + TPC-C latency ------------------------------------- *)

let fig13 p =
  header "Figure 13: mean operation latency (us), Kamino-Tx-Simple vs undo-logging";
  (* Latency is measured unsaturated (one client): with four fast clients
     the shared undo log queues and the comparison degenerates into the
     throughput story of Figure 12. *)
  let rows =
    List.map
      (fun wl ->
        let k = make_store p Engine.Kamino_simple in
        let kam = (run_ycsb p k wl ~clients:1).Driver.mean_latency_ns in
        let u = make_store p Engine.Undo_logging in
        let undo = (run_ycsb p u wl ~clients:1).Driver.mean_latency_ns in
        [
          "YCSB-" ^ Ycsb.name wl;
          f2 (us_of_ns kam);
          f2 (us_of_ns undo);
          f2 (undo /. kam);
        ])
      ycsb_workloads
    @ [
        (let kam = (run_tpcc p Engine.Kamino_simple ~clients:1).Driver.mean_latency_ns in
         let undo = (run_tpcc p Engine.Undo_logging ~clients:1).Driver.mean_latency_ns in
         [ "TPC-C"; f2 (us_of_ns kam); f2 (us_of_ns undo); f2 (undo /. kam) ]);
      ]
  in
  print_table ~cols:[ "workload"; "Kamino-Tx"; "Undo-Logging"; "speedup" ] rows

(* --- Figures 14/15: partial backups -------------------------------------- *)

let dynamic_points = [ 0.1; 0.3; 0.5; 0.7; 0.9 ]

let fig14_15 p =
  let wls = [ Ycsb.A; Ycsb.B; Ycsb.D; Ycsb.F ] in
  let cols =
    [ "workload" ] @ List.map (fun a -> Printf.sprintf "%d%%" (int_of_float (a *. 100.))) dynamic_points
    @ [ "Full-Copy" ]
  in
  let results =
    List.map
      (fun wl ->
        let per_alpha =
          List.map
            (fun alpha ->
              let kv = make_store p (kamino_dynamic alpha) in
              let r = run_ycsb p kv wl ~clients:4 in
              (r.Driver.mean_latency_ns, r.Driver.throughput_mops))
            dynamic_points
        in
        let kv = make_store p Engine.Kamino_simple in
        let r = run_ycsb p kv wl ~clients:4 in
        (wl, per_alpha @ [ (r.Driver.mean_latency_ns, r.Driver.throughput_mops) ]))
      wls
  in
  header "Figure 14: mean latency (us) with partial backups of 10%..90% vs full copy";
  print_table ~cols
    (List.map
       (fun (wl, cells) ->
         ("YCSB-" ^ Ycsb.name wl) :: List.map (fun (l, _) -> f2 (us_of_ns l)) cells)
       results);
  header "Figure 15: throughput (M ops/sec) with partial backups vs full copy";
  print_table ~cols
    (List.map
       (fun (wl, cells) ->
         ("YCSB-" ^ Ycsb.name wl) :: List.map (fun (_, t) -> f3 t) cells)
       results)

(* --- Figure 16: normalized performance per dollar ------------------------ *)

(* Pricing lives in {!Common} ([dollars] and friends), shared with the
   throughput harness's fig16-at-scale sweep. *)
let fig16 p =
  header "Figure 16: normalized ops/sec per dollar (baseline: undo-logging)";
  let configs =
    [ ("Undo-Logging", Engine.Undo_logging) ]
    @ List.map
        (fun a -> (Printf.sprintf "Dynamic-%d" (int_of_float (a *. 100.)), kamino_dynamic a))
        dynamic_points
    @ [ ("Full-Copy", Engine.Kamino_simple) ]
  in
  let measure kind wl =
    let kv = make_store p kind in
    let r = run_ycsb p kv wl ~clients:4 in
    let cost = dollars p (Engine.storage_bytes (Kv.engine kv)) in
    r.Driver.throughput_mops *. 1e6 /. cost
  in
  let base_w = measure Engine.Undo_logging Ycsb.A in
  let base_r = measure Engine.Undo_logging Ycsb.C in
  let rows =
    List.map
      (fun (name, kind) ->
        [
          name;
          f2 (measure kind Ycsb.A /. base_w);
          f2 (measure kind Ycsb.C /. base_r);
        ])
      configs
  in
  print_table ~cols:[ "config"; "write-heavy (A)"; "read-only (C)" ] rows

(* --- Figures 17/18: replicated latency and throughput -------------------- *)

let fig17_18 p =
  let wls = [ Ycsb.A; Ycsb.B; Ycsb.D; Ycsb.F ] in
  let results =
    List.map
      (fun wl ->
        let kam_kops, kam_lat, _ =
          run_chain p (Chain.Kamino_chain { alpha = None }) wl ~clients:12
        in
        let trad_kops, trad_lat, _ = run_chain p Chain.Traditional wl ~clients:12 in
        (wl, (kam_lat, trad_lat), (kam_kops, trad_kops)))
      wls
  in
  header "Figure 17: replicated mean latency (us), f=2";
  print_table ~cols:[ "workload"; "Kamino-Tx-Chain"; "Chain-Replication"; "speedup" ]
    (List.map
       (fun (wl, (kl, tl), _) ->
         [ "YCSB-" ^ Ycsb.name wl; f1 (us_of_ns kl); f1 (us_of_ns tl); f2 (tl /. kl) ])
       results);
  header "Figure 18: replicated throughput (K ops/sec), f=2";
  print_table ~cols:[ "workload"; "Kamino-Tx-Chain"; "Chain-Replication"; "speedup" ]
    (List.map
       (fun (wl, _, (kk, tk)) ->
         [ "YCSB-" ^ Ycsb.name wl; f1 kk; f1 tk; f2 (kk /. tk) ])
       results)

(* --- Table 1: replication schemes ---------------------------------------- *)

let table1 p =
  header "Table 1: replication schemes (f = 2, measured lt/lc/ln plugged into the formulas)";
  (* Measure the primitive latencies on this configuration. *)
  let cfg = engine_config p in
  let e = Engine.create ~config:cfg ~kind:Engine.No_logging ~seed:9 () in
  let t0 = Engine.now e in
  let ptr =
    Engine.with_tx e (fun tx ->
        let ptr = Engine.alloc tx p.value_size in
        Engine.write_int64 tx ptr 0 1L;
        ptr)
  in
  ignore ptr;
  let lt = Engine.now e - t0 in
  let cm = cfg.Engine.cost in
  let lc =
    int_of_float
      (Cost_model.copy_cost cm p.value_size
      +. (cm.Cost_model.flush_line_ns *. float_of_int (p.value_size / 64))
      +. cm.Cost_model.fence_ns)
  in
  let ln = 5000 in
  let f = 2 in
  let data_gb = float_of_int p.heap_bytes /. 1e9 in
  let alpha = 0.2 in
  let rows =
    [
      [
        "Traditional Chain";
        string_of_int (f + 1);
        Printf.sprintf "%.2f GB" (float_of_int (f + 1) *. data_gb);
        string_of_int ((f + 1) * (lc + ln + lt));
        string_of_int ((f + 1) * (lc + ln + lt));
      ];
      [
        "Kamino-Tx-Simple Chain";
        string_of_int (f + 1);
        Printf.sprintf "%.2f GB" (2.0 *. float_of_int (f + 1) *. data_gb);
        string_of_int ((f + 1) * (ln + lt));
        string_of_int ((f + 1) * (ln + lt));
      ];
      [
        "Kamino-Tx-Dynamic Chain";
        string_of_int (f + 1);
        Printf.sprintf "%.2f GB" ((1.0 +. alpha) *. float_of_int (f + 1) *. data_gb);
        string_of_int ((f + 1) * (ln + lt));
        string_of_int ((f + 1) * (ln + lt));
      ];
      [
        "Kamino-Tx-Amortized Chain";
        string_of_int (f + 2);
        Printf.sprintf "%.2f GB" ((float_of_int (f + 2) +. alpha) *. data_gb);
        string_of_int (2 * (f + 1) * (ln + lt));
        string_of_int ((f + 1) * (ln + lt));
      ];
    ]
  in
  Printf.printf "measured: lt=%d ns (1 KB tx), lc=%d ns (1 KB copy), ln=%d ns (hop)\n" lt lc ln;
  print_table
    ~cols:[ "scheme"; "#servers"; "storage"; "dependent lat (ns)"; "independent lat (ns)" ]
    rows;
  (* Cross-check the amortized scheme against the simulator. *)
  let check mode label =
    let kops, lat, storage = run_chain { p with chain_ops = 1000 } mode Ycsb.A ~clients:1 in
    Printf.printf "simulated %-22s mean latency %.1f us, %.1f K ops/s, %.2f GB\n" label
      (us_of_ns lat) kops
      (float_of_int storage /. 1e9)
  in
  check Chain.Traditional "traditional";
  check (Chain.Kamino_chain { alpha = None }) "kamino (full head)";
  check (Chain.Kamino_chain { alpha = Some 0.2 }) "kamino (dynamic head)"

(* --- §7.1 dependent transactions ----------------------------------------- *)

let dependent p =
  header
    "Dependent transactions (80% lookups, 20% inserts on one key, 4 clients): spaced vs \
     burst";
  (* Four concurrent clients, as in the paper's experiment: in the burst
     pattern consecutive same-key inserts from different clients overlap in
     virtual time, so each must wait for the previous one's backup
     propagation (and lock release); in the spaced pattern lookups separate
     them and the copying happens off the critical path. *)
  let run kind ~burst =
    let kv = make_store p kind in
    let rng = Rng.create 31 in
    let hot = p.record_count / 2 in
    let i = ref 0 in
    let step ~client:_ () =
      incr i;
      let insert =
        if burst then !i mod 25 < 5 (* 5 consecutive inserts per 25 ops *)
        else !i mod 5 = 0
      in
      if insert then begin
        Kv.put kv hot (value_for p hot);
        "insert"
      end
      else begin
        ignore (Kv.get kv (Rng.int rng p.record_count));
        "lookup"
      end
    in
    let r = Driver.run ~engine:(Kv.engine kv) ~clients:4 ~total_ops:p.ops ~step in
    let inserts = Option.get (Driver.latency_of r "insert") in
    (r.Driver.mean_latency_ns, Stats.mean inserts)
  in
  let rows =
    List.concat_map
      (fun (name, kind) ->
        let sa, si = run kind ~burst:false in
        let ba, bi = run kind ~burst:true in
        [
          [ name; "spaced"; f2 (us_of_ns sa); f2 (us_of_ns si) ];
          [ name; "burst"; f2 (us_of_ns ba); f2 (us_of_ns bi) ];
          [
            name;
            "burst/spaced";
            f2 (ba /. sa);
            f2 (bi /. si);
          ];
        ])
      [ ("Undo-Logging", Engine.Undo_logging); ("Kamino-Tx", Engine.Kamino_simple) ]
  in
  print_table ~cols:[ "engine"; "pattern"; "avg latency us"; "insert latency us" ] rows

(* --- §7.1 worst case ------------------------------------------------------ *)

let worst p =
  header "Worst case: back-to-back updates of one object (latency us per update)";
  let sizes = [ 64; 256; 1024; 4096 ] in
  let run kind size =
    let cfg = engine_config p in
    let e = Engine.create ~config:cfg ~kind ~seed:11 () in
    let ptr =
      Engine.with_tx e (fun tx ->
          let ptr = Engine.alloc tx size in
          Engine.write_int64 tx ptr 0 0L;
          ptr)
    in
    Engine.drain_backup e;
    let n = min 5000 p.ops in
    let t0 = Engine.now e in
    for i = 1 to n do
      Engine.with_tx e (fun tx ->
          Engine.add tx ptr;
          Engine.write_int64 tx ptr 0 (Int64.of_int i))
    done;
    float_of_int (Engine.now e - t0) /. float_of_int n
  in
  let rows =
    List.map
      (fun size ->
        let kam = run Engine.Kamino_simple size in
        let undo = run Engine.Undo_logging size in
        [ string_of_int size; f2 (us_of_ns kam); f2 (us_of_ns undo); f2 (undo /. kam) ])
      sizes
  in
  print_table ~cols:[ "object bytes"; "Kamino-Tx"; "Undo-Logging"; "ratio" ] rows

(* --- Recovery time (extension) -------------------------------------------- *)

(* Not a paper figure: how long recovery takes as a function of what the
   crash interrupted. Kamino-Tx recovery replays the intent log — committed
   records roll forward to the backup, the in-flight one rolls back — so
   its cost grows with the backlog of unapplied write sets; undo logging
   only ever rolls back the single in-flight transaction. *)
let recovery p =
  header "Recovery time vs. crash backlog (extension; 1 KB objects)";
  let run_kamino backlog =
    let cfg = { (engine_config p) with Engine.log_slots = 1024 } in
    let e = Engine.create ~config:cfg ~kind:Engine.Kamino_simple ~seed:31 () in
    (* One object per backlog transaction, plus a victim for the in-flight
       one: all distinct, so nothing forces the applier to catch up before
       the crash. *)
    let arr =
      Array.init 513 (fun _ ->
          Engine.with_tx e (fun tx ->
              let o = Engine.alloc tx 1024 in
              Engine.write_int64 tx o 0 0L;
              o))
    in
    Engine.drain_backup e;
    (* Build a backlog of committed-but-unapplied write sets... *)
    for i = 1 to backlog do
      Engine.with_tx e (fun tx ->
          let o = arr.(i) in
          Engine.add tx o;
          Engine.write_int64 tx o 0 (Int64.of_int i))
    done;
    (* ...plus one in-flight transaction, then pull the plug. *)
    let tx = Engine.begin_tx e in
    Engine.add tx arr.(0);
    Engine.write_int64 tx arr.(0) 0 999L;
    Engine.crash e;
    let t0 = Engine.now e in
    Engine.recover e;
    Engine.now e - t0
  in
  let run_undo () =
    let e = Engine.create ~config:(engine_config p) ~kind:Engine.Undo_logging ~seed:31 () in
    let o =
      Engine.with_tx e (fun tx ->
          let o = Engine.alloc tx 1024 in
          Engine.write_int64 tx o 0 0L;
          o)
    in
    let tx = Engine.begin_tx e in
    Engine.add tx o;
    Engine.write_int64 tx o 0 999L;
    Engine.crash e;
    let t0 = Engine.now e in
    Engine.recover e;
    Engine.now e - t0
  in
  let rows =
    List.map
      (fun backlog ->
        [ string_of_int backlog; f2 (us_of_ns (float_of_int (run_kamino backlog))) ])
      [ 0; 16; 64; 256; 512 ]
  in
  print_table ~cols:[ "unapplied committed txs"; "Kamino recovery us" ] rows;
  Printf.printf "undo-logging recovery (always one in-flight tx): %.2f us
"
    (us_of_ns (float_of_int (run_undo ())))

(* --- Availability under quick reboots (extension) -------------------------- *)

(* Not a paper figure: drive a steady write stream through the asynchronous
   chain (persistent op queues, cleanup acks) and quick-reboot a middle
   replica mid-stream. Reports completion-latency percentiles before,
   during and after the fault window — the paper's §5.3 protocol is what
   keeps the "during" column finite and the data consistent. *)
let availability p =
  header "Availability: write latency (us) around a mid-replica quick reboot (extension)";
  let module Async = Kamino_chain.Async_chain in
  let module Op = Kamino_chain.Op in
  let c =
    Async.create
      ~engine_config:{ (engine_config p) with Engine.heap_bytes = p.heap_bytes / 4 }
      ~hop_ns:5000 ~rpc_ns:1000 ~mode:Async.Kamino_chain ~f:2 ~value_size:p.value_size
      ~node_size:p.node_size ~seed:57 ()
  in
  let payload = String.make (p.value_size - 64) 'a' in
  let period = 25_000 in
  let n = 2000 in
  let reboot_at = n / 2 * period in
  let before = Stats.create () and during = Stats.create () and after = Stats.create () in
  for k = 0 to n - 1 do
    let at = k * period in
    Async.submit c ~at (Op.Put (k mod 500, payload)) ~on_complete:(fun finish ->
        let bucket =
          if at < reboot_at - 500_000 then before
          else if at < reboot_at + 500_000 then during
          else after
        in
        Stats.add bucket (float_of_int (finish - at)))
  done;
  Async.quick_reboot ~downtime_ns:2_000_000 c ~at:reboot_at 2;
  ignore (Async.run c);
  (match Async.replicas_consistent c with
  | Ok () -> ()
  | Error e -> Printf.printf "!! replicas diverged: %s
" e);
  let row name s =
    [ name; f1 (us_of_ns (Stats.mean s)); f1 (us_of_ns (Stats.percentile s 99.0));
      string_of_int (Stats.count s) ]
  in
  print_table ~cols:[ "phase"; "mean us"; "p99 us"; "writes" ]
    [ row "before fault" before; row "fault window (+-0.5ms)" during; row "after fault" after ]

(* --- Ablations ------------------------------------------------------------ *)

let ablate_flush p =
  header
    "Ablation: one intent-log persist per declared batch (paper, §6.2) vs per intent \
     (transactions declare 8 intents up front, Figure-10 style)";
  let run flush_per_intent =
    let cfg = { (engine_config p) with Engine.flush_per_intent } in
    let e = Engine.create ~config:cfg ~kind:Engine.Kamino_simple ~seed:5 () in
    let objs =
      Engine.with_tx e (fun tx -> List.init 8 (fun _ -> Engine.alloc tx 256))
    in
    Engine.drain_backup e;
    let n = 2000 in
    let t0 = Engine.now e in
    for i = 1 to n do
      Engine.with_tx e (fun tx ->
          (* declare all intents first, then edit — the TX_ADD-then-edit
             shape of the paper's Figure 10 *)
          List.iter (fun o -> Engine.add tx o) objs;
          List.iter (fun o -> Engine.write_int tx o 0 i) objs);
      Kamino_sim.Clock.advance (Engine.clock e) 20_000
    done;
    float_of_int (Engine.now e - t0) /. float_of_int n -. 20_000.0
  in
  let batched = run false and per_intent = run true in
  print_table ~cols:[ "variant"; "8-object tx latency us" ]
    [
      [ "batched (paper)"; f2 (us_of_ns batched) ];
      [ "flush per intent"; f2 (us_of_ns per_intent) ];
      [ "overhead"; f2 (per_intent /. batched) ];
    ]

let ablate_pending p =
  header "Ablation: per-object pending tracking (paper) vs global barrier";
  let run global_pending =
    let kv =
      make_store
        ~config_tweak:(fun c -> { c with Engine.global_pending })
        p Engine.Kamino_simple
    in
    (run_ycsb p kv Ycsb.A ~clients:8).Driver.throughput_mops
  in
  let per_object = run false and global = run true in
  print_table ~cols:[ "variant"; "YCSB-A throughput (M ops/s, 8 clients)" ]
    [
      [ "per-object (paper)"; f3 per_object ];
      [ "global barrier"; f3 global ];
      [ "speedup"; f2 (per_object /. global) ];
    ]

let ablate_eviction p =
  header "Ablation: dynamic backup eviction policy (LRU vs FIFO, alpha = 10%)";
  let run policy =
    let kv = make_store p (Engine.Kamino_dynamic { alpha = 0.1; policy }) in
    let r = run_ycsb p kv Ycsb.A ~clients:4 in
    let m = Engine.metrics (Kv.engine kv) in
    let total = m.Engine.backup_hits + m.Engine.backup_misses in
    ( r.Driver.mean_latency_ns,
      if total = 0 then 0.0 else float_of_int m.Engine.backup_hits /. float_of_int total )
  in
  let lru_lat, lru_hits = run Backup.Lru_policy in
  let fifo_lat, fifo_hits = run Backup.Fifo_policy in
  print_table ~cols:[ "policy"; "YCSB-A latency us"; "backup hit rate" ]
    [
      [ "LRU (paper)"; f2 (us_of_ns lru_lat); f3 lru_hits ];
      [ "FIFO"; f2 (us_of_ns fifo_lat); f3 fifo_hits ];
    ]

(* §1's granularity argument (the MongoDB/NVML motivation): an update that
   changes a few byte ranges of a large document. Whole-object logging
   copies the document; field-granular logging copies the fields; Kamino-Tx
   copies nothing in the critical path either way. *)
let granularity p =
  header
    "Granularity (§1): updating 2 x 64 B fields of a 4 KB document (latency us per tx)";
  let doc_size = 4096 in
  let run kind ~field_granular =
    let cfg = engine_config p in
    let e = Engine.create ~config:cfg ~kind ~seed:23 () in
    let doc =
      Engine.with_tx e (fun tx ->
          let doc = Engine.alloc tx doc_size in
          Engine.write_int64 tx doc 0 0L;
          doc)
    in
    Engine.drain_backup e;
    let n = 2000 in
    let t0 = Engine.now e in
    for i = 1 to n do
      Engine.with_tx e (fun tx ->
          if field_granular then begin
            Engine.add_field tx doc 256 64;
            Engine.add_field tx doc 2048 64
          end
          else Engine.add tx doc;
          Engine.write_int64 tx doc 256 (Int64.of_int i);
          Engine.write_int64 tx doc 2048 (Int64.of_int i));
      Kamino_sim.Clock.advance (Engine.clock e) 20_000
    done;
    (float_of_int (Engine.now e - t0) /. float_of_int n -. 20_000.0) /. 1000.0
  in
  print_table ~cols:[ "engine"; "whole-object log"; "field-granular log" ]
    [
      [
        "Undo-Logging";
        f2 (run Engine.Undo_logging ~field_granular:false);
        f2 (run Engine.Undo_logging ~field_granular:true);
      ];
      [
        "Kamino-Tx";
        f2 (run Engine.Kamino_simple ~field_granular:false);
        f2 (run Engine.Kamino_simple ~field_granular:true);
      ];
    ]

(* §2 "Hardware Support": with persistent caches, flushes/fences are free
   but atomicity is still needed — Kamino-Tx "does not require but can reap
   the same benefits". *)
let ablate_persistent_caches p =
  header "Ablation: whole-system persistence (persistent caches, §2)";
  let run cost kind =
    let kv = make_store ~config_tweak:(fun c -> { c with Engine.cost }) p kind in
    (run_ycsb p kv Ycsb.A ~clients:1).Driver.mean_latency_ns
  in
  let rows =
    List.map
      (fun (name, cost) ->
        let kam = run cost Engine.Kamino_simple and undo = run cost Engine.Undo_logging in
        [ name; f2 (us_of_ns kam); f2 (us_of_ns undo); f2 (undo /. kam) ])
      [
        ("flush+fence (default)", Cost_model.default);
        ("persistent caches", Cost_model.whole_system_persistence);
      ]
  in
  print_table ~cols:[ "hardware"; "Kamino us"; "Undo us"; "undo/kamino" ] rows

let ablate_slow_nvm p =
  header "Ablation: NVDIMM-class vs 3D-Xpoint-class device cost models";
  let run cost =
    let kv =
      make_store ~config_tweak:(fun c -> { c with Engine.cost }) p Engine.Kamino_simple
    in
    let kam = (run_ycsb p kv Ycsb.A ~clients:4).Driver.mean_latency_ns in
    let kv =
      make_store ~config_tweak:(fun c -> { c with Engine.cost }) p Engine.Undo_logging
    in
    let undo = (run_ycsb p kv Ycsb.A ~clients:4).Driver.mean_latency_ns in
    (kam, undo)
  in
  let k1, u1 = run Cost_model.default in
  let k2, u2 = run Cost_model.slow_nvm in
  print_table ~cols:[ "device"; "Kamino us"; "Undo us"; "undo/kamino" ]
    [
      [ "NVDIMM-class"; f2 (us_of_ns k1); f2 (us_of_ns u1); f2 (u1 /. k1) ];
      [ "3DXP-class"; f2 (us_of_ns k2); f2 (us_of_ns u2); f2 (u2 /. k2) ];
    ]
