(* Filesystem bench: the classic smallfile / largefile pair from the
   LFS-lineage of filesystem papers, run over the transactional inode
   layer (`lib/fs`) on every engine kind.

   - smallfile: metadata-bound churn — create a file in a rotating
     directory, write a ~100-byte payload, read it back, unlink it.
     Every cycle is four fs operations, each its own multi-object
     transaction touching the inode table, a directory B+Tree and the
     extent allocator.
   - largefile: data-bound streaming — append block-sized chunks to a
     single file up to a size cap, then truncate to zero and start
     over.  This is where undo/cow pay per-byte logging or copy costs
     and Kamino pays backup propagation.

   Each cell reports wall ops/s, simulated ns/op, minor words/op and
   the p50/p95/p99 of the workload's hot operation from the engine's
   own `fs.op_ns.*` histograms.  After the measured window every cell
   must pass `Fs_check.fsck` — a benchmark that corrupts the tree does
   not get to report a number.

   Usage: fs_bench.exe [--ops N] [--out PATH] [--engine NAME]
   Exit status is non-zero if any cell completes zero operations or
   fails fsck (the CI smoke gates). *)

module Engine = Kamino_core.Engine
module Backup = Kamino_core.Backup
module Fs = Kamino_fs.Fs
module Fs_check = Kamino_fs.Fs_check
module Metrics = Kamino_obs.Metrics

let kinds =
  [
    ("no-logging", Engine.No_logging);
    ("undo-logging", Engine.Undo_logging);
    ("cow", Engine.Cow);
    ("kamino-simple", Engine.Kamino_simple);
    ("kamino-dyn-30", Engine.Kamino_dynamic { alpha = 0.3; policy = Backup.Lru_policy });
  ]

let config =
  {
    Engine.default_config with
    Engine.heap_bytes = 32 * 1024 * 1024;
    log_slots = 256;
    max_tx_entries = 8192;
    data_log_bytes = 8 * 1024 * 1024;
  }

type cell = {
  engine : string;
  workload : string;
  ops : int;
  wall_ns : float;
  ops_per_sec : float;
  sim_ns_per_op : float;
  alloc_words_per_op : float;
  hot_op : string;  (* which fs.op_ns.* histogram the percentiles are from *)
  p50 : int;
  p95 : int;
  p99 : int;
}

(* Run [cycles] iterations of [step] (each [per_cycle] fs ops) against a
   fresh filesystem, then gate on fsck. *)
let measure ~engine_name ~workload ~hot_op e fs ~cycles ~per_cycle step =
  (* Touch the code paths once so the first measured cycle is not also
     the first major-heap growth. *)
  step 0;
  Engine.drain_backup e;
  Gc.minor ();
  let sim0 = Engine.now e in
  let w0 = Gc.minor_words () in
  let t0 = Common.Wall.now_s () in
  for i = 1 to cycles do
    step i
  done;
  let wall_s = Common.Wall.elapsed_s ~since:t0 in
  let sim_ns = Engine.now e - sim0 in
  let words = Gc.minor_words () -. w0 in
  let ops = cycles * per_cycle in
  (match Fs_check.fsck fs with
  | Ok () -> ()
  | Error err ->
      Printf.eprintf "FAIL: %s/%s: post-run fsck: %s\n" engine_name workload err;
      exit 1);
  let h = Metrics.hist (Engine.registry e) ("fs.op_ns." ^ hot_op) in
  let per x = if ops = 0 then 0.0 else x /. float_of_int ops in
  {
    engine = engine_name;
    workload;
    ops;
    wall_ns = wall_s *. 1e9;
    ops_per_sec = (if wall_s <= 0.0 then 0.0 else float_of_int ops /. wall_s);
    sim_ns_per_op = per (float_of_int sim_ns);
    alloc_words_per_op = per words;
    hot_op;
    p50 = Metrics.percentile h 50.0;
    p95 = Metrics.percentile h 95.0;
    p99 = Metrics.percentile h 99.0;
  }

let smallfile_cell ~total_ops (engine_name, kind) =
  let e = Engine.create ~config ~kind ~seed:90210 () in
  let fs = Fs.format ~block_size:512 ~dir_hash_bits:4 e in
  let root = Fs.root_ino fs in
  let ndirs = 8 in
  let dirs =
    Array.init ndirs (fun i -> Fs.mkdir fs ~dir:root (Printf.sprintf "d%d" i))
  in
  let payload = String.make 100 's' in
  let step i =
    let dir = dirs.(i mod ndirs) in
    let name = Printf.sprintf "f%d" (i mod 64) in
    let ino = Fs.create fs ~dir name in
    Fs.write fs ~ino ~off:0 payload;
    ignore (Fs.read fs ~ino ~off:0 ~len:(String.length payload));
    Fs.unlink fs ~dir name
  in
  measure ~engine_name ~workload:"smallfile" ~hot_op:"create" e fs
    ~cycles:(max 1 (total_ops / 4)) ~per_cycle:4 step

let largefile_cell ~total_ops (engine_name, kind) =
  let e = Engine.create ~config ~kind ~seed:90210 () in
  let fs = Fs.format ~block_size:4096 ~dir_hash_bits:4 e in
  let ino = Fs.create fs ~dir:(Fs.root_ino fs) "big" in
  (* Chunks fill whole blocks; 64 chunks = a 256 KB file per cycle. *)
  let chunk = 4096 in
  let chunks = 64 in
  let payload = String.make chunk 'L' in
  let step _ =
    for c = 0 to chunks - 1 do
      Fs.write fs ~ino ~off:(c * chunk) payload
    done;
    Fs.truncate fs ~ino ~len:0
  in
  let per_cycle = chunks + 1 in
  measure ~engine_name ~workload:"largefile" ~hot_op:"write" e fs
    ~cycles:(max 1 (total_ops / per_cycle)) ~per_cycle step

let json_of_cell c =
  Printf.sprintf
    {|    {"engine": "%s", "workload": "%s", "ops": %d, "wall_ns": %.0f,
     "ops_per_sec": %.1f, "sim_ns_per_op": %.1f, "alloc_words_per_op": %.1f,
     "latency_sim_ns": {"op": "%s", "p50": %d, "p95": %d, "p99": %d}}|}
    c.engine c.workload c.ops c.wall_ns c.ops_per_sec c.sim_ns_per_op
    c.alloc_words_per_op c.hot_op c.p50 c.p95 c.p99

let () =
  let total_ops = ref 6_000 and out = ref "BENCH_fs.json" and engine_filter = ref "" in
  let rec parse = function
    | [] -> ()
    | "--ops" :: v :: rest ->
        total_ops := int_of_string v;
        parse rest
    | "--out" :: v :: rest ->
        out := v;
        parse rest
    | "--engine" :: v :: rest ->
        engine_filter := v;
        parse rest
    | a :: _ ->
        Printf.eprintf "fs_bench.exe: unknown argument %s\n" a;
        exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  let kinds =
    List.filter (fun (name, _) -> !engine_filter = "" || name = !engine_filter) kinds
  in
  if kinds = [] then begin
    Printf.eprintf "fs_bench.exe: no engine matches --engine %s\n" !engine_filter;
    exit 2
  end;
  Printf.printf "filesystem bench: ~%d fs ops per cell, %d engine kinds\n%!" !total_ops
    (List.length kinds);
  let cells =
    List.concat_map
      (fun kind ->
        let row =
          [ smallfile_cell ~total_ops:!total_ops kind;
            largefile_cell ~total_ops:!total_ops kind ]
        in
        List.iter
          (fun c ->
            Printf.printf
              "  %-14s %-9s %9.0f ops/s  %8.0f sim-ns/op  %7.1f words/op  \
               %s p50/p95/p99 %d/%d/%d sim-ns\n%!"
              c.engine c.workload c.ops_per_sec c.sim_ns_per_op c.alloc_words_per_op
              c.hot_op c.p50 c.p95 c.p99)
          row;
        row)
      kinds
  in
  let oc = open_out !out in
  Printf.fprintf oc
    "{\n  \"schema\": \"kamino-fs-v1\",\n  \"target_ops\": %d,\n  \"results\": [\n%s\n  ]\n}\n"
    !total_ops
    (String.concat ",\n" (List.map json_of_cell cells));
  close_out oc;
  Printf.printf "wrote %s (%d cells)\n" !out (List.length cells);
  let dead = List.filter (fun c -> c.ops = 0 || c.p50 = 0) cells in
  if dead <> [] then begin
    List.iter
      (fun c ->
        Printf.eprintf "FAIL: %s/%s produced no measurable operations\n" c.engine
          c.workload)
      dead;
    exit 1
  end
