(* Wall-clock throughput bench: real OCaml execution speed of the engine
   stack, measured next to the simulated cost model.

   The figure benches (`main.exe`) report *simulated* nanoseconds — the
   numbers the paper's shapes are judged on.  This harness answers the
   orthogonal question the ROADMAP's "as fast as the hardware allows" goal
   needs answered: how many transactions per *real* second does the runtime
   execute, and how much does it allocate per operation?  It drives YCSB
   A/B/C and the TPC-C mix through every engine kind for a fixed wall-clock
   budget per cell and writes a machine-readable `BENCH_throughput.json` so
   successive PRs have a trajectory to regress against.

   The invariant that makes the two columns comparable (DESIGN.md §8): a
   wall-clock optimization must leave every simulated counter and simulated
   nanosecond untouched, so `sim_ns_per_op` stays constant across PRs while
   `ops_per_sec` is supposed to climb.

   Usage: throughput.exe [--budget SECONDS] [--out PATH] [--records N]
   Exit status is non-zero if any cell completes zero transactions (the CI
   smoke gate).

   `--shards L` (e.g. `--shards 1,4`) runs the sharded-façade scaling curve
   instead of the normal grid: fixed-op YCSB-A cells (uniform and
   zipf-skewed keys) with clients pinned round-robin over the shards,
   reporting *simulated* aggregate throughput per shard count into
   `BENCH_shard.json` (schema v2, with wall_mops / wall_speedup columns).
   The run fails if any higher shard count falls below the first cell —
   the CI monotone scaling gate.  `--domains L` additionally re-runs each
   cell on that many OCaml domains: simulated results must stay
   bit-identical (the built-in determinism oracle) while wall-clock
   speedup at 2 domains is gated against `--wall-floor` (default 1.6x) on
   multicore hosts, and SKIPped on single-core ones.

   `--ab [--ab-ops N] [--gate-words FILE]` runs the tracing A/B instead of
   the normal grid: each Kamino engine executes the same fixed-op YCSB-A
   run twice, tracing off then on, and the run fails unless simulated
   ns/op and every NVM counter are bit-identical — the observability
   layer must be invisible to the simulation.  `--gate-words` additionally
   compares the tracing-off allocation rate against the committed
   baseline JSON and fails on a >2% regression, so the disabled path
   stays free. *)

module Rng = Kamino_sim.Rng
module Cost_model = Kamino_nvm.Cost_model
module Engine = Kamino_core.Engine
module Backup = Kamino_core.Backup
module Region = Kamino_nvm.Region
module Kv = Kamino_kv.Kv
module Ycsb = Kamino_workload.Ycsb
module Tpcc = Kamino_workload.Tpcc
module Obs = Kamino_obs.Obs
module Shard = Kamino_shard.Shard
module Shard_kv = Kamino_shard.Shard_kv
module Shard_driver = Kamino_shard.Shard_driver

let kinds =
  [
    ("no-logging", Engine.No_logging);
    ("undo-logging", Engine.Undo_logging);
    ("cow", Engine.Cow);
    ("kamino-simple", Engine.Kamino_simple);
    ("kamino-dyn-50", Engine.Kamino_dynamic { alpha = 0.5; policy = Backup.Lru_policy });
  ]

type cell = {
  engine : string;
  workload : string;
  ops : int;
  wall_ns : float;
  ops_per_sec : float;
  alloc_words_per_op : float;
  sim_ns_per_op : float;
  counters : Region.counters;  (* aggregate deltas over the measured window *)
  storage_bytes : int;  (* total NVM footprint (fig16 pricing input) *)
}

let config records =
  {
    Engine.default_config with
    Engine.heap_bytes = max (8 * 1024 * 1024) (records * 1024);
    log_slots = 256;
    data_log_bytes = 8 * 1024 * 1024;
  }

let sub_counters a b =
  {
    Region.stores = a.Region.stores - b.Region.stores;
    bytes_stored = a.Region.bytes_stored - b.Region.bytes_stored;
    loads = a.Region.loads - b.Region.loads;
    bytes_loaded = a.Region.bytes_loaded - b.Region.bytes_loaded;
    lines_flushed = a.Region.lines_flushed - b.Region.lines_flushed;
    fences = a.Region.fences - b.Region.fences;
    bytes_copied = a.Region.bytes_copied - b.Region.bytes_copied;
    crashes = a.Region.crashes - b.Region.crashes;
  }

(* Run [step] repeatedly until [budget_s] wall-clock seconds elapse or
   [max_ops] operations complete, checking the clock once per 32-op batch so
   the timing overhead stays out of the measured loop. The op cap exists for
   workloads with net heap growth (TPC-C accumulates undelivered orders):
   the cap is sized so the heap cannot fill within a run, however fast the
   engine gets. *)
let measure ?(max_ops = max_int) ~engine_name ~workload ~budget_s e step =
  (* Warm up: fault in code paths and let lazy structures settle. *)
  for _ = 1 to 64 do
    step ()
  done;
  Engine.drain_backup e;
  Gc.minor ();
  let c0 = Engine.main_counters e in
  let sim0 = Engine.now e in
  let w0 = Gc.minor_words () in
  let t0 = Common.Wall.now_s () in
  let deadline = t0 +. budget_s in
  let ops = ref 0 in
  let t1 = ref t0 in
  while !t1 < deadline && !ops < max_ops do
    for _ = 1 to 32 do
      step ()
    done;
    ops := !ops + 32;
    t1 := Common.Wall.now_s ()
  done;
  let wall_s = !t1 -. t0 in
  let words = Gc.minor_words () -. w0 in
  let sim_ns = Engine.now e - sim0 in
  let c1 = Engine.main_counters e in
  let per x = if !ops = 0 then 0.0 else x /. float_of_int !ops in
  {
    engine = engine_name;
    workload;
    ops = !ops;
    wall_ns = wall_s *. 1e9;
    ops_per_sec = (if wall_s <= 0.0 then 0.0 else float_of_int !ops /. wall_s);
    alloc_words_per_op = per words;
    sim_ns_per_op = per (float_of_int sim_ns);
    counters = sub_counters c1 c0;
    storage_bytes = Engine.storage_bytes e;
  }

let ycsb_cell ?obs ?max_ops ?(uniform = false) ~budget_s ~records (engine_name, kind) wl =
  (* Insert-bearing workloads (D/E grow the key space 5% of ops) get heap
     headroom so an op-capped run cannot fill the arena however fast the
     engine gets; the A/B/C cells keep the exact historical config so the
     words/op trajectory stays comparable across PRs. *)
  let cfg =
    match wl with
    | Ycsb.D | Ycsb.E ->
        let base = config records in
        { base with Engine.heap_bytes = base.Engine.heap_bytes + (64 * 1024 * 1024) }
    | _ -> config records
  in
  let e = Engine.create ~config:cfg ?obs ~kind ~seed:90210 () in
  let kv = Kv.create e ~value_size:256 ~node_size:1024 in
  let payload = String.make 240 'k' in
  Kv.load kv ~count:records ~key:Fun.id ~value:(fun _ -> payload);
  Engine.drain_backup e;
  let w = Ycsb.create ~uniform wl ~record_count:records ~theta:0.99 in
  let rng = Rng.create 777 in
  let step () =
    match Ycsb.next w rng with
    | Ycsb.Read k -> ignore (Kv.get kv k)
    | Ycsb.Update k | Ycsb.Insert k -> Kv.put kv k payload
    | Ycsb.Scan (k, n) -> ignore (Kv.scan kv ~lo:k ~count:n (fun _ _ -> ()))
    | Ycsb.Rmw k -> ignore (Kv.read_modify_write kv k Fun.id)
  in
  let workload =
    "ycsb-"
    ^ String.lowercase_ascii (Ycsb.name wl)
    ^ if uniform then "-uniform" else ""
  in
  measure ?max_ops ~engine_name ~workload ~budget_s e step

let tpcc_cell ~budget_s ~records:_ (engine_name, kind) =
  (* TPC-C grows the heap (~200 net bytes per mix op from undelivered
     orders), so give it a roomy heap and cap ops well below capacity. *)
  let cfg = { (config 4096) with Engine.heap_bytes = 64 * 1024 * 1024 } in
  let e = Engine.create ~config:cfg ~kind ~seed:90210 () in
  let rng = Rng.create 777 in
  let t =
    Tpcc.setup e ~warehouses:1 ~districts_per_w:4 ~customers_per_district:20 ~items:200
      ~rng
  in
  let step () = ignore (Tpcc.run_mix t rng) in
  measure ~max_ops:150_000 ~engine_name ~workload:"tpcc" ~budget_s e step

(* --- tracing A/B ----------------------------------------------------------- *)

(* Pull one cell's [alloc_words_per_op] out of a committed
   BENCH_throughput.json by string scanning (cells are emitted by
   [json_of_cell]; no JSON parser in the dependency set). *)
let scan_baseline_words path ~engine ~workload =
  let ic = open_in path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  let find sub from =
    let n = String.length sub and l = String.length s in
    let rec go i =
      if i + n > l then None
      else if String.sub s i n = sub then Some (i + n)
      else go (i + 1)
    in
    go from
  in
  let cell = Printf.sprintf {|"engine": "%s", "workload": "%s"|} engine workload in
  match find cell 0 with
  | None -> None
  | Some i -> (
      match find {|"alloc_words_per_op": |} i with
      | None -> None
      | Some j ->
          let k = ref j in
          while !k < String.length s && s.[!k] <> ',' && s.[!k] <> '\n' do
            incr k
          done;
          float_of_string_opt (String.trim (String.sub s j (!k - j))))

(* Fixed-op YCSB-A, tracing off then on, per Kamino engine.  The two runs
   re-create the engine from the same seed, so the only difference is the
   tracer: any drift in simulated time or NVM counters is an
   instrumentation bug (DESIGN.md §8/§10) and fails the run. *)
let run_ab ~records ~ab_ops ~gate_words =
  let engines =
    List.filter
      (fun (name, _) -> String.length name >= 6 && String.sub name 0 6 = "kamino")
      kinds
  in
  Printf.printf "tracing A/B: ycsb-a, %d ops per cell, %d records\n%!" ab_ops records;
  let failed = ref false in
  let off_cells =
    List.map
      (fun ((name, _) as kind) ->
        let off = ycsb_cell ~max_ops:ab_ops ~budget_s:1e9 ~records kind Ycsb.A in
        let obs = Obs.create () in
        let on = ycsb_cell ~obs ~max_ops:ab_ops ~budget_s:1e9 ~records kind Ycsb.A in
        let sim_ok = off.sim_ns_per_op = on.sim_ns_per_op in
        let counters_ok = off.counters = on.counters in
        Printf.printf
          "  %-14s off %7.1f words/op %8.0f sim-ns/op | on %7.1f words/op %8.0f \
           sim-ns/op (%d events, %d dropped)\n%!"
          name off.alloc_words_per_op off.sim_ns_per_op on.alloc_words_per_op
          on.sim_ns_per_op (Obs.total obs) (Obs.dropped obs);
        if not sim_ok then begin
          failed := true;
          Printf.eprintf "FAIL: %s sim-ns/op drifted with tracing on (%.3f -> %.3f)\n"
            name off.sim_ns_per_op on.sim_ns_per_op
        end;
        if not counters_ok then begin
          failed := true;
          Printf.eprintf "FAIL: %s NVM counters drifted with tracing on\n" name
        end;
        (name, off))
      engines
  in
  (match gate_words with
  | None -> ()
  | Some path -> (
      match scan_baseline_words path ~engine:"kamino-simple" ~workload:"ycsb-a" with
      | None ->
          failed := true;
          Printf.eprintf "FAIL: no kamino-simple/ycsb-a baseline in %s\n" path
      | Some base ->
          let off = List.assoc "kamino-simple" off_cells in
          let limit = base *. 1.02 in
          Printf.printf
            "  words/op gate: measured %.1f vs baseline %.1f (limit %.1f)\n%!"
            off.alloc_words_per_op base limit;
          if off.alloc_words_per_op > limit then begin
            failed := true;
            Printf.eprintf
              "FAIL: tracing-off allocation regressed: %.1f words/op > %.1f (baseline \
               %.1f + 2%%)\n"
              off.alloc_words_per_op limit base
          end));
  if !failed then exit 1;
  Printf.printf "tracing A/B: zero simulated-time and counter delta across %d engines\n"
    (List.length engines)

(* --- snapshot reads -------------------------------------------------------- *)

(* `--snapshot-reads` runs the read-path A/B instead of the normal grid:
   the read-heavy YCSB cells (B 95/5, C 100/0, D 95/5-latest) on
   kamino-simple, each measured twice — reads through the locked
   transactional path ([Kv.get]) and through the lock-free backup
   snapshot path ([Kv.snapshot_get] on a dedicated reader clock). Writes
   `BENCH_read.json` with both columns plus the staleness percentiles
   the snapshot runs observed, and fails if the snapshot column loses to
   the locked baseline on any cell — the whole point of reading the
   backup at the watermark is that readers skip locks, so losing means
   the read path regressed. *)

type read_cell = {
  r_cell : cell;
  r_mode : string;  (* "locked" | "snapshot" *)
  r_hits : int;
  r_fallbacks : int;
  r_stale_p50 : int;
  r_stale_p99 : int;
  r_stale_max : int;
}

let read_cell ?max_ops ~snapshot ~budget_s ~records (wl_name, wl) =
  (* YCSB-D grows the key space (5% inserts), so the heap gets headroom
     and the D cell is op-capped below capacity, like the TPC-C cell. *)
  let cfg = { (config records) with Engine.heap_bytes = 32 * 1024 * 1024 } in
  let e = Engine.create ~config:cfg ~kind:Engine.Kamino_simple ~seed:90210 () in
  let kv = Kv.create e ~value_size:256 ~node_size:1024 in
  let payload = String.make 240 'k' in
  Kv.load kv ~count:records ~key:Fun.id ~value:(fun _ -> payload);
  Engine.drain_backup e;
  let w = Ycsb.create wl ~record_count:records ~theta:0.99 in
  let rng = Rng.create 777 in
  let reader = Kamino_sim.Clock.create_at (Engine.now e) in
  let read k =
    if snapshot then ignore (Kv.snapshot_get ~clock:reader kv k)
    else ignore (Kv.get kv k)
  in
  let step () =
    match Ycsb.next w rng with
    | Ycsb.Read k -> read k
    | Ycsb.Update k | Ycsb.Insert k -> Kv.put kv k payload
    | Ycsb.Scan (k, n) -> ignore (Kv.scan kv ~lo:k ~count:n (fun _ _ -> ()))
    | Ycsb.Rmw k -> ignore (Kv.read_modify_write kv k Fun.id)
  in
  let c = measure ?max_ops ~engine_name:"kamino-simple" ~workload:wl_name ~budget_s e step in
  let m = Engine.metrics e in
  let h = Kamino_obs.Metrics.hist (Engine.registry e) "engine.snapshot_staleness_ns" in
  {
    r_cell = c;
    r_mode = (if snapshot then "snapshot" else "locked");
    r_hits = m.Engine.snapshot_hits;
    r_fallbacks = m.Engine.snapshot_fallbacks;
    r_stale_p50 = Kamino_obs.Metrics.percentile h 50.0;
    r_stale_p99 = Kamino_obs.Metrics.percentile h 99.0;
    r_stale_max = Kamino_obs.Metrics.max_value h;
  }

let json_of_read_cell r =
  Printf.sprintf
    {|    {"workload": "%s", "mode": "%s", "ops": %d, "ops_per_sec": %.1f,
     "sim_ns_per_op": %.1f, "alloc_words_per_op": %.1f,
     "snapshot_hits": %d, "snapshot_fallbacks": %d,
     "staleness_ns": {"p50": %d, "p99": %d, "max": %d}}|}
    r.r_cell.workload r.r_mode r.r_cell.ops r.r_cell.ops_per_sec r.r_cell.sim_ns_per_op
    r.r_cell.alloc_words_per_op r.r_hits r.r_fallbacks r.r_stale_p50 r.r_stale_p99
    r.r_stale_max

let run_snapshot_reads ~budget_s ~records ~out =
  Printf.printf
    "snapshot-read A/B: kamino-simple, %d records, %.2fs budget per cell\n%!" records
    budget_s;
  let wls =
    [ ("ycsb-b", Ycsb.B, None); ("ycsb-c", Ycsb.C, None); ("ycsb-d", Ycsb.D, Some 200_000) ]
  in
  let failed = ref false in
  let cells =
    List.concat_map
      (fun (wn, w, max_ops) ->
        let wl = (wn, w) in
        let locked = read_cell ?max_ops ~snapshot:false ~budget_s ~records wl in
        let snap = read_cell ?max_ops ~snapshot:true ~budget_s ~records wl in
        Printf.printf
          "  %-7s locked %9.0f ops/s | snapshot %9.0f ops/s (%.2fx)  %d hits, %d \
           fallbacks, staleness p50/p99/max %d/%d/%d ns\n%!"
          (fst wl) locked.r_cell.ops_per_sec snap.r_cell.ops_per_sec
          (if locked.r_cell.ops_per_sec > 0.0 then
             snap.r_cell.ops_per_sec /. locked.r_cell.ops_per_sec
           else 0.0)
          snap.r_hits snap.r_fallbacks snap.r_stale_p50 snap.r_stale_p99 snap.r_stale_max;
        if snap.r_cell.ops_per_sec < locked.r_cell.ops_per_sec then begin
          failed := true;
          Printf.eprintf
            "FAIL: %s snapshot reads (%.0f ops/s) below the locked baseline (%.0f)\n"
            (fst wl) snap.r_cell.ops_per_sec locked.r_cell.ops_per_sec
        end;
        if snap.r_hits = 0 then begin
          failed := true;
          Printf.eprintf "FAIL: %s snapshot run served zero backup hits\n" (fst wl)
        end;
        [ locked; snap ])
      wls
  in
  let oc = open_out out in
  Printf.fprintf oc
    "{\n  \"schema\": \"kamino-read-v1\",\n  \"engine\": \"kamino-simple\",\n  \
     \"budget_s\": %.3f,\n  \"records\": %d,\n  \"results\": [\n%s\n  ]\n}\n"
    budget_s records
    (String.concat ",\n" (List.map json_of_read_cell cells));
  close_out oc;
  Printf.printf "wrote %s (%d cells)\n" out (List.length cells);
  if !failed then exit 1

(* --- shard scaling --------------------------------------------------------- *)

(* The `--shards` curve measures the sharded façade on an interleaved
   YCSB-A: fixed clients pinned round-robin over the shards, each drawing
   50/50 reads/updates from its home shard's keys — uniformly and (the
   `ycsb-a-zipf` row) zipf-skewed, so hot-key imbalance across domains is
   measured rather than assumed. The cell is sized to be applier-bound —
   slow-NVM copy costs and a small intent-log ring — so the single
   backup-propagation timeline is the shards=1 bottleneck and per-shard
   appliers are what extra shards buy: the paper's §4.3 argument
   partitioned (DESIGN.md par11).

   `--domains L` re-runs every cell once per domain count (1 is always
   included as the baseline): *simulated* numbers must be bit-identical
   across domain counts — the built-in determinism oracle fails the run
   on any drift in per-shard engine fingerprints, elapsed sim-ns or mean
   latency — while *wall* seconds are what the domains buy. On a
   multicore host the wall-clock speedup of the 2-domain uniform cell is
   gated (`--wall-floor`, default 1.6x); on a single-core host the gate
   prints SKIP and passes, since there is nothing to parallelize onto. *)

type shard_cell = {
  s_workload : string;  (* "ycsb-a-uniform" | "ycsb-a-zipf" *)
  s_shards : int;
  s_domains : int;
  s_clients : int;
  s_ops : int;
  s_elapsed_ns : int;
  s_mops : float;  (* aggregate simulated M ops/s *)
  s_mean_ns : float;
  s_wall_s : float;
  s_wall_mops : float;  (* real M ops per wall second *)
  mutable s_wall_speedup : float;  (* vs the domains=1 run of the same cell *)
  s_committed : int;
  s_fingerprints : string array;  (* per-shard Engine.fingerprint *)
}

let shard_config ~records =
  {
    Engine.default_config with
    Engine.heap_bytes = max (8 * 1024 * 1024) (records * 4096);
    log_slots = 8;
    data_log_bytes = 8 * 1024 * 1024;
    cost = Cost_model.slow_nvm;
  }

let shard_cell ~zipf ~shards ~domains ~clients ~total_ops ~records =
  let s =
    Shard.create ~config:(shard_config ~records) ~kind:Engine.Kamino_simple
      ~seed:90210 ~shards ()
  in
  let kv = Shard_kv.create s ~value_size:1024 ~node_size:1024 in
  let payload = String.make 1000 'k' in
  for k = 0 to records - 1 do
    Shard_kv.put kv k payload
  done;
  Shard.drain_backups s;
  (* Clients are pinned to home shards, so each draws keys from its own
     shard's slice of the hash-routed key space. *)
  let own = Array.make shards [] in
  for k = records - 1 downto 0 do
    let i = Shard.route s k in
    own.(i) <- k :: own.(i)
  done;
  let own = Array.map Array.of_list own in
  (* Zipf rows: one generator per shard over that shard's slice (read-only
     tables, safe to share across the shard's clients), so each shard has
     its own hot set and the hottest shard bounds wall-clock scaling. *)
  let zipfs =
    if zipf then
      Some
        (Array.map
           (fun keys -> Kamino_workload.Zipf.create ~n:(Array.length keys) ~theta:0.99)
           own)
    else None
  in
  let rngs = Array.init clients (fun c -> Rng.create (777 + c)) in
  let pick ~shard_id rng =
    let keys = own.(shard_id) in
    match zipfs with
    | Some zs -> keys.(Kamino_workload.Zipf.sample_scrambled zs.(shard_id) rng)
    | None -> keys.(Rng.int rng (Array.length keys))
  in
  let router = Kamino_shard.Shard_router.create s in
  let t0 = Common.Wall.now_s () in
  let r =
    Shard_driver.run ~domains ~router ~shard:s ~clients ~total_ops
      ~step:(fun ~client ~shard_id () ->
        let rng = rngs.(client) in
        let k = pick ~shard_id rng in
        if Rng.int rng 100 < 50 then begin
          ignore (Kv.get (Shard_kv.store kv shard_id) k);
          "read"
        end
        else begin
          Kv.put (Shard_kv.store kv shard_id) k payload;
          "update"
        end)
      ()
  in
  let wall = Common.Wall.elapsed_s ~since:t0 in
  {
    s_workload = (if zipf then "ycsb-a-zipf" else "ycsb-a-uniform");
    s_shards = shards;
    s_domains = domains;
    s_clients = clients;
    s_ops = r.Kamino_workload.Driver.total_ops;
    s_elapsed_ns = r.Kamino_workload.Driver.elapsed_ns;
    s_mops = r.Kamino_workload.Driver.throughput_mops;
    s_mean_ns = r.Kamino_workload.Driver.mean_latency_ns;
    s_wall_s = wall;
    s_wall_mops = (if wall <= 0.0 then 0.0 else float_of_int total_ops /. wall /. 1e6);
    s_wall_speedup = 1.0;
    s_committed = Shard.committed s;
    s_fingerprints =
      Array.init shards (fun i -> Engine.fingerprint (Shard.engine s i));
  }

let json_of_shard_cell c =
  Printf.sprintf
    {|    {"workload": "%s", "shards": %d, "domains": %d, "clients": %d, "ops": %d,
     "elapsed_sim_ns": %d, "agg_mops": %.4f, "mean_latency_ns": %.0f,
     "committed": %d, "wall_s": %.3f, "wall_mops": %.4f, "wall_speedup": %.2f}|}
    c.s_workload c.s_shards c.s_domains c.s_clients c.s_ops c.s_elapsed_ns c.s_mops
    c.s_mean_ns c.s_committed c.s_wall_s c.s_wall_mops c.s_wall_speedup

let run_shards ~shard_list ~domain_list ~clients ~total_ops ~records ~wall_floor ~out =
  (* domains=1 is always measured: it is the wall-speedup denominator and
     the determinism baseline the parallel runs are checked against. *)
  let domain_list =
    List.sort_uniq compare (if List.mem 1 domain_list then domain_list else 1 :: domain_list)
  in
  let cores = Domain.recommended_domain_count () in
  Printf.printf
    "shard scaling: ycsb-a uniform+zipf, %d ops, %d clients, %d records, shards %s, \
     domains %s (%d cores)\n%!"
    total_ops clients records
    (String.concat "," (List.map string_of_int shard_list))
    (String.concat "," (List.map string_of_int domain_list))
    cores;
  let failed = ref false in
  let cells =
    List.concat_map
      (fun zipf ->
        List.concat_map
          (fun shards ->
            let base =
              shard_cell ~zipf ~shards ~domains:1 ~clients ~total_ops ~records
            in
            let rest =
              List.filter_map
                (fun domains ->
                  if domains = 1 then None
                  else begin
                    let c =
                      shard_cell ~zipf ~shards ~domains ~clients ~total_ops ~records
                    in
                    c.s_wall_speedup <-
                      (if c.s_wall_s > 0.0 then base.s_wall_s /. c.s_wall_s else 0.0);
                    (* The determinism oracle: a parallel run must be the
                       sequential run, bit for bit, in simulated space. *)
                    if
                      c.s_fingerprints <> base.s_fingerprints
                      || c.s_elapsed_ns <> base.s_elapsed_ns
                      || c.s_mean_ns <> base.s_mean_ns
                      || c.s_committed <> base.s_committed
                    then begin
                      failed := true;
                      Printf.eprintf
                        "FAIL: %s shards=%d domains=%d diverges from the sequential \
                         run (sim %d vs %d ns, %d vs %d committed)\n"
                        c.s_workload shards domains c.s_elapsed_ns base.s_elapsed_ns
                        c.s_committed base.s_committed
                    end;
                    Some c
                  end)
                domain_list
            in
            let row = base :: rest in
            List.iter
              (fun c ->
                Printf.printf
                  "  %-14s shards=%-2d domains=%-2d %8.4f sim-M ops/s  %8.4f wall-M \
                   ops/s  (%.3fs wall, %.2fx)\n%!"
                  c.s_workload c.s_shards c.s_domains c.s_mops c.s_wall_mops c.s_wall_s
                  c.s_wall_speedup)
              row;
            row)
          shard_list)
      [ false; true ]
  in
  let oc = open_out out in
  Printf.fprintf oc
    "{\n  \"schema\": \"kamino-shard-v2\",\n  \"clients\": %d,\n  \"ops\": %d,\n  \
     \"records\": %d,\n  \"cores\": %d,\n  \"results\": [\n%s\n  ]\n}\n"
    clients total_ops records cores
    (String.concat ",\n" (List.map json_of_shard_cell cells));
  close_out oc;
  Printf.printf "wrote %s (%d cells)\n" out (List.length cells);
  (* Gate 1 (simulated): scaling must be monotone against the lowest shard
     count within each (workload, domains=1) series — more appliers must
     never lose aggregate simulated throughput. *)
  List.iter
    (fun wl ->
      match List.filter (fun c -> c.s_workload = wl && c.s_domains = 1) cells with
      | [] -> ()
      | base :: rest ->
          List.iter
            (fun c ->
              if c.s_mops < base.s_mops then begin
                failed := true;
                Printf.eprintf
                  "FAIL: %s %d-shard aggregate ops/s (%.4f M) below the %d-shard run \
                   (%.4f M)\n"
                  wl c.s_shards c.s_mops base.s_shards base.s_mops
              end)
            rest)
    [ "ycsb-a-uniform"; "ycsb-a-zipf" ];
  (* Gate 2 (wall): at 2 domains the uniform cell must beat the floor on a
     multicore host. One core means domains time-slice one CPU — nothing
     to win, so the gate reports SKIP rather than a meaningless number. *)
  (match
     List.filter
       (fun c -> c.s_workload = "ycsb-a-uniform" && c.s_domains = 2 && c.s_shards >= 2)
       cells
   with
  | [] -> ()
  | two_domain ->
      let best =
        List.fold_left (fun acc c -> max acc c.s_wall_speedup) 0.0 two_domain
      in
      if cores < 2 then
        Printf.printf
          "SKIP: wall-speedup gate needs >= 2 cores (host reports %d); best 2-domain \
           speedup observed %.2fx\n"
          cores best
      else if best < wall_floor then begin
        failed := true;
        Printf.eprintf
          "FAIL: best 2-domain wall speedup %.2fx is below the %.2fx floor\n" best
          wall_floor
      end
      else Printf.printf "wall-speedup gate: %.2fx at 2 domains (floor %.2fx)\n" best
          wall_floor);
  if !failed then exit 1

let json_of_cell c =
  let n = c.counters in
  Printf.sprintf
    {|    {"engine": "%s", "workload": "%s", "ops": %d, "wall_ns": %.0f,
     "ops_per_sec": %.1f, "alloc_words_per_op": %.1f, "sim_ns_per_op": %.1f,
     "counters": {"stores": %d, "bytes_stored": %d, "loads": %d, "bytes_loaded": %d,
                  "lines_flushed": %d, "fences": %d, "bytes_copied": %d}}|}
    c.engine c.workload c.ops c.wall_ns c.ops_per_sec c.alloc_words_per_op
    c.sim_ns_per_op n.Region.stores n.Region.bytes_stored n.Region.loads
    n.Region.bytes_loaded n.Region.lines_flushed n.Region.fences n.Region.bytes_copied

(* --- Figure 16 at scale ----------------------------------------------------

   The paper's performance-per-dollar sweep (Figure 16), re-run on the
   wall-clock harness at full record count: YCSB-A on Kamino-Tx-Dynamic
   across backup fractions alpha, priced with the same TCO stand-in the
   figure bench uses ({!Common.dollars_of}). Emitted as a separate
   "fig16" section of BENCH_throughput.json so the alpha/price trade-off
   has a committed trajectory at 1M records, not just at bench scale. *)

type fig16_cell = { f_alpha : float; f_cell : cell; f_ops_per_usd : float }

let fig16_alphas = [ 0.1; 0.3; 0.5; 0.7; 0.9 ]

let fig16_sweep ~budget_s ~records =
  let heap_bytes = (config records).Engine.heap_bytes in
  List.map
    (fun alpha ->
      let name = Printf.sprintf "kamino-dyn-%02d" (int_of_float (alpha *. 100.)) in
      let kind = Engine.Kamino_dynamic { alpha; policy = Backup.Lru_policy } in
      let c = ycsb_cell ~budget_s ~records (name, kind) Ycsb.A in
      let usd = Common.dollars_of ~heap_bytes c.storage_bytes in
      let f = { f_alpha = alpha; f_cell = c; f_ops_per_usd = c.ops_per_sec /. usd } in
      Printf.printf "  fig16 alpha=%.1f %9.0f ops/s  %10d bytes  %7.2f ops/s/$\n%!" alpha
        c.ops_per_sec c.storage_bytes f.f_ops_per_usd;
      f)
    fig16_alphas

let json_of_fig16 f =
  Printf.sprintf
    {|    {"alpha": %.2f, "engine": "%s", "workload": "%s", "ops": %d,
     "ops_per_sec": %.1f, "sim_ns_per_op": %.1f, "storage_bytes": %d,
     "ops_per_usd": %.4f}|}
    f.f_alpha f.f_cell.engine f.f_cell.workload f.f_cell.ops f.f_cell.ops_per_sec
    f.f_cell.sim_ns_per_op f.f_cell.storage_bytes f.f_ops_per_usd

let () =
  let budget = ref 0.4 and out = ref "" and records = ref 4096 in
  let engine_filter = ref "" and workload_filter = ref "" in
  let ab = ref false and ab_ops = ref 20_000 and gate_words = ref None in
  let snapshot_reads = ref false in
  let shards = ref [] and shard_ops = ref 20_000 and shard_clients = ref 8 in
  let domains = ref [ 1 ] and wall_floor = ref 1.6 in
  let rec parse = function
    | [] -> ()
    | "--budget" :: v :: rest ->
        budget := float_of_string v;
        parse rest
    | "--out" :: v :: rest ->
        out := v;
        parse rest
    | "--records" :: v :: rest ->
        records := int_of_string v;
        parse rest
    | "--engine" :: v :: rest ->
        engine_filter := v;
        parse rest
    | "--workload" :: v :: rest ->
        workload_filter := v;
        parse rest
    | "--ab" :: rest ->
        ab := true;
        parse rest
    | "--snapshot-reads" :: rest ->
        snapshot_reads := true;
        parse rest
    | "--ab-ops" :: v :: rest ->
        ab_ops := int_of_string v;
        parse rest
    | "--gate-words" :: v :: rest ->
        gate_words := Some v;
        parse rest
    | "--shards" :: v :: rest ->
        shards := List.map int_of_string (String.split_on_char ',' v);
        parse rest
    | "--shard-ops" :: v :: rest ->
        shard_ops := int_of_string v;
        parse rest
    | "--shard-clients" :: v :: rest ->
        shard_clients := int_of_string v;
        parse rest
    | "--domains" :: v :: rest ->
        domains := List.map int_of_string (String.split_on_char ',' v);
        parse rest
    | "--wall-floor" :: v :: rest ->
        wall_floor := float_of_string v;
        parse rest
    | a :: _ ->
        Printf.eprintf "throughput.exe: unknown argument %s\n" a;
        exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  let budget_s = !budget and records = !records in
  if !ab then begin
    run_ab ~records ~ab_ops:!ab_ops ~gate_words:!gate_words;
    exit 0
  end;
  if !snapshot_reads then begin
    let out = if !out = "" then "BENCH_read.json" else !out in
    run_snapshot_reads ~budget_s ~records ~out;
    exit 0
  end;
  if !shards <> [] then begin
    let out = if !out = "" then "BENCH_shard.json" else !out in
    run_shards ~shard_list:!shards ~domain_list:!domains ~clients:!shard_clients
      ~total_ops:!shard_ops ~records ~wall_floor:!wall_floor ~out;
    exit 0
  end;
  let out = if !out = "" then "BENCH_throughput.json" else !out in
  let full_grid = !engine_filter = "" && !workload_filter = "" in
  (* --engine and --workload both take comma-separated lists
     (e.g. --engine kamino-dyn-50,undo-logging --workload ycsb-a,ycsb-e). *)
  let kinds =
    let wanted_kinds =
      if !engine_filter = "" then [] else String.split_on_char ',' !engine_filter
    in
    List.filter (fun (name, _) -> wanted_kinds = [] || List.mem name wanted_kinds) kinds
  in
  let wanted =
    if !workload_filter = "" then [] else String.split_on_char ',' !workload_filter
  in
  let want_wl name = wanted = [] || List.mem name wanted in
  Printf.printf
    "wall-clock throughput: %d records, %.2fs budget per cell, %d engine kinds\n%!"
    records budget_s (List.length kinds);
  (* The E cells are op-capped: 5% of ops insert fresh keys, so a fixed cap
     (with the D/E heap headroom in [ycsb_cell]) bounds net heap growth
     regardless of engine speed. *)
  let cells =
    List.concat_map
      (fun kind ->
        let ycsb =
          List.filter_map
            (fun (name, wl, uniform, max_ops) ->
              if want_wl name then
                Some (ycsb_cell ~uniform ?max_ops ~budget_s ~records kind wl)
              else None)
            [
              ("ycsb-a", Ycsb.A, false, None);
              ("ycsb-b", Ycsb.B, false, None);
              ("ycsb-c", Ycsb.C, false, None);
              ("ycsb-e", Ycsb.E, false, Some 200_000);
              ("ycsb-e-uniform", Ycsb.E, true, Some 200_000);
            ]
        in
        let row =
          ycsb @ (if want_wl "tpcc" then [ tpcc_cell ~budget_s ~records kind ] else [])
        in
        List.iter
          (fun c ->
            Printf.printf "  %-14s %-14s %9.0f ops/s  %7.1f words/op  %8.0f sim-ns/op\n%!"
              c.engine c.workload c.ops_per_sec c.alloc_words_per_op c.sim_ns_per_op)
          row;
        row)
      kinds
  in
  (* The fig16 alpha sweep rides along only on the unfiltered grid: filtered
     invocations are smoke/CI runs that want one cell, not five extras. *)
  let fig16 = if full_grid then fig16_sweep ~budget_s ~records else [] in
  let oc = open_out out in
  Printf.fprintf oc
    "{\n  \"schema\": \"kamino-throughput-v1\",\n  \"budget_s\": %.3f,\n  \
     \"records\": %d,\n  \"results\": [\n%s\n  ],\n  \"fig16\": [\n%s\n  ]\n}\n"
    budget_s records
    (String.concat ",\n" (List.map json_of_cell cells))
    (String.concat ",\n" (List.map json_of_fig16 fig16));
  close_out oc;
  Printf.printf "wrote %s (%d cells)\n" out (List.length cells);
  let dead = List.filter (fun c -> c.ops = 0) cells in
  if dead <> [] then begin
    List.iter
      (fun c -> Printf.eprintf "FAIL: %s/%s completed zero transactions\n" c.engine c.workload)
      dead;
    exit 1
  end
