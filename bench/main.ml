(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (DESIGN.md carries the per-experiment index, EXPERIMENTS.md
   the paper-vs-measured comparison).

   Usage: main.exe [--full] [experiment ...]
   Experiments: fig1 fig12 fig13 fig14 fig15 fig16 fig17 fig18 table1 dep
                worst micro granularity recovery availability ablations.
                Default: all of them at scaled-down sizes. *)

let experiments p =
  [
    ("fig1", fun () -> Figures.fig1 p);
    ("fig12", fun () -> Figures.fig12 p);
    ("fig13", fun () -> Figures.fig13 p);
    ("fig14", fun () -> Figures.fig14_15 p);
    ("fig15", fun () -> Figures.fig14_15 p);
    ("fig16", fun () -> Figures.fig16 p);
    ("fig17", fun () -> Figures.fig17_18 p);
    ("fig18", fun () -> Figures.fig17_18 p);
    ("table1", fun () -> Figures.table1 p);
    ("dep", fun () -> Figures.dependent p);
    ("worst", fun () -> Figures.worst p);
    ("micro", fun () -> Micro.run ());
    ("granularity", fun () -> Figures.granularity p);
    ("recovery", fun () -> Figures.recovery p);
    ("availability", fun () -> Figures.availability p);
    ( "ablations",
      fun () ->
        Figures.ablate_flush p;
        Figures.ablate_pending p;
        Figures.ablate_eviction p;
        Figures.ablate_slow_nvm p;
        Figures.ablate_persistent_caches p );
  ]

(* fig14/fig15 (and fig17/fig18) share one runner; avoid running it twice
   when both are requested. *)
let dedup names =
  let canon = function "fig15" -> "fig14" | "fig18" -> "fig17" | n -> n in
  List.rev
    (fst
       (List.fold_left
          (fun (acc, seen) n ->
            let c = canon n in
            if List.mem c seen then (acc, seen) else (n :: acc, c :: seen))
          ([], []) names))

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let full = List.mem "--full" args in
  let p = if full then Common.full else Common.scaled in
  let requested = List.filter (fun a -> a <> "--full") args in
  let exps = experiments p in
  let names = if requested = [] then List.map fst exps else requested in
  let names = dedup names in
  Printf.printf
    "Kamino-Tx benchmark harness (%s parameters: %d records x %d B values, %d ops/point)\n"
    (if full then "full" else "scaled")
    p.Common.record_count p.Common.value_size p.Common.ops;
  List.iter
    (fun name ->
      match List.assoc_opt name exps with
      | Some f ->
          let t0 = Common.Wall.now_s () in
          f ();
          Printf.printf "[%s done in %.1fs wall]\n%!" name
            (Common.Wall.elapsed_s ~since:t0)
      | None -> Printf.printf "unknown experiment %S (skipped)\n" name)
    names
