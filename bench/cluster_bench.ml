(* Cluster latency bench: drive the replicated shard-cluster (chain of
   f+2 replicas per shard, cross-shard 2PC over chain heads) with a
   fault-free open-loop workload and report commit-latency percentiles in
   *simulated* nanoseconds, straight from the cluster's metrics registry.

   Two histograms matter: [cluster.commit_ns] (every client write,
   single-key and multi) and [cluster.cross_commit_ns] (only the
   multi_puts that actually spanned several chains — prepare, marker
   persist, commit, full-chain acknowledgment on every participant).
   Being simulated time, the numbers are deterministic for a given
   (seed, ops) pair — successive PRs regress against the committed
   `BENCH_cluster.json` shape, not against host noise.

   Usage: cluster_bench.exe [--ops N] [--seed N] [--out PATH]
   Exit status is non-zero if any histogram is empty or the final
   cluster verification (quiescence, replica byte-consistency, backup
   images) fails — the CI smoke gate. *)

module Rng = Kamino_sim.Rng
module Engine = Kamino_core.Engine
module Metrics = Kamino_obs.Metrics
module Op = Kamino_chain.Op
module Cluster = Kamino_cluster.Cluster

let shards = 3

let f = 1

let key_space = 64

let run ~ops ~seed =
  let cluster =
    Cluster.create
      ~engine_config:
        {
          Engine.default_config with
          Engine.heap_bytes = 1 lsl 19;
          log_slots = 64;
          data_log_bytes = 1 lsl 17;
        }
      ~hop_ns:5000 ~rpc_ns:500 ~promote_ns:40_000 ~shards ~f ~value_size:64
      ~node_size:512 ~seed ()
  in
  let rng = Rng.create ((seed * 31) + 7) in
  let at = ref 0 in
  let singles = ref 0 and multis = ref 0 in
  for i = 0 to ops - 1 do
    at := !at + 1_200 + Rng.int rng 2_400;
    if Rng.int rng 4 = 0 then begin
      (* 2-3 distinct keys: under the router nearly always cross-chain. *)
      incr multis;
      let n = 2 + Rng.int rng 2 in
      let rec draw acc = function
        | 0 -> acc
        | n ->
            let k = Rng.int rng key_space in
            if List.mem_assoc k acc then draw acc n
            else draw ((k, Printf.sprintf "m%d.%d" i k) :: acc) (n - 1)
      in
      Cluster.multi_put cluster ~at:!at (List.rev (draw [] n))
        ~on_complete:(fun _ -> ())
    end
    else begin
      incr singles;
      Cluster.submit cluster ~at:!at
        (Op.Put (Rng.int rng key_space, Printf.sprintf "v%d" i))
        ~on_complete:(fun _ -> ())
    end
  done;
  let events = Cluster.run cluster in
  (cluster, events, !singles, !multis)

let hist_json name h =
  let ps = Metrics.percentiles h [| 50.; 95.; 99. |] in
  Printf.sprintf
    {|    "%s": { "count": %d, "p50_ns": %d, "p95_ns": %d, "p99_ns": %d, "mean_ns": %.1f, "max_ns": %d }|}
    name (Metrics.count h) ps.(0) ps.(1) ps.(2) (Metrics.mean h)
    (Metrics.max_value h)

let () =
  let ops = ref 2_000 and seed = ref 42 and out = ref "BENCH_cluster.json" in
  let specs =
    [
      ("--ops", Arg.Set_int ops, "N  client operations (default 2000)");
      ("--seed", Arg.Set_int seed, "N  workload seed (default 42)");
      ("--out", Arg.Set_string out, "PATH  output JSON (default BENCH_cluster.json)");
    ]
  in
  Arg.parse specs (fun a -> raise (Arg.Bad ("unexpected argument " ^ a))) "cluster_bench";
  let cluster, events, singles, multis = run ~ops:!ops ~seed:!seed in
  (match Cluster.verify cluster with
  | Ok () -> ()
  | Error e ->
      Printf.eprintf "cluster verification failed: %s\n" e;
      exit 1);
  let reg = Cluster.registry cluster in
  let commit_h = Metrics.hist reg "cluster.commit_ns" in
  let cross_h = Metrics.hist reg "cluster.cross_commit_ns" in
  if Metrics.count commit_h = 0 || Metrics.count cross_h = 0 then begin
    Printf.eprintf "empty latency histogram (commit=%d cross=%d)\n"
      (Metrics.count commit_h) (Metrics.count cross_h);
    exit 1
  end;
  let counters =
    Metrics.fold_counters reg ~init:[] ~f:(fun acc name v ->
        Printf.sprintf {|      "%s": %d|} name v :: acc)
    |> List.rev
  in
  let json =
    String.concat "\n"
      ([
         "{";
         {|  "schema": 1,|};
         Printf.sprintf {|  "shards": %d,|} shards;
         Printf.sprintf {|  "f": %d,|} f;
         Printf.sprintf {|  "seed": %d,|} !seed;
         Printf.sprintf {|  "ops": %d,|} !ops;
         Printf.sprintf {|  "singles": %d,|} singles;
         Printf.sprintf {|  "multis": %d,|} multis;
         Printf.sprintf {|  "events": %d,|} events;
         {|  "latency": {|};
         hist_json "commit_ns" commit_h ^ ",";
         hist_json "cross_commit_ns" cross_h;
         "  },";
         {|  "counters": {|};
       ]
      @ [ String.concat ",\n" counters ]
      @ [ "  }"; "}"; "" ])
  in
  let oc = open_out !out in
  output_string oc json;
  close_out oc;
  Printf.printf "%s: %d ops (%d singles, %d multis) in %d events\n" !out !ops
    singles multis events;
  let ps = Metrics.percentiles commit_h [| 50.; 95.; 99. |] in
  let xs = Metrics.percentiles cross_h [| 50.; 95.; 99. |] in
  Printf.printf "  commit p50/p95/p99 = %d/%d/%d ns (%d samples)\n" ps.(0) ps.(1)
    ps.(2) (Metrics.count commit_h);
  Printf.printf "  cross  p50/p95/p99 = %d/%d/%d ns (%d samples)\n" xs.(0) xs.(1)
    xs.(2) (Metrics.count cross_h)
