(* Shared benchmark infrastructure: parameters, engine/store construction,
   preloading, YCSB and TPC-C runners, and table formatting. *)

(* Monotonic-guarded wall clock, the one timing source for every bench
   entry point. [Unix.gettimeofday] can step backwards under NTP slews;
   a bench that reads it raw can report negative elapsed time or a
   bogus speedup. [now_s] clamps to non-decreasing, so intervals from
   [elapsed_s] are always >= 0 and every entry point agrees on what
   "wall seconds" means. *)
module Wall = struct
  let last = ref neg_infinity

  let now_s () =
    let t = Unix.gettimeofday () in
    if t > !last then last := t;
    !last

  let elapsed_s ~since = max 0.0 (now_s () -. since)
end

module Rng = Kamino_sim.Rng
module Clock = Kamino_sim.Clock
module Stats = Kamino_sim.Stats
module Cost_model = Kamino_nvm.Cost_model
module Engine = Kamino_core.Engine
module Backup = Kamino_core.Backup
module Kv = Kamino_kv.Kv
module Ycsb = Kamino_workload.Ycsb
module Zipf = Kamino_workload.Zipf
module Driver = Kamino_workload.Driver
module Tpcc = Kamino_workload.Tpcc
module Chain = Kamino_chain.Chain

type params = {
  record_count : int;  (** preloaded keys (paper: 10 M) *)
  value_size : int;  (** bytes per value (paper: 1 KB) *)
  ops : int;  (** operations per data point *)
  node_size : int;  (** B+Tree node object size *)
  theta : float;  (** zipfian skew *)
  heap_bytes : int;
  chain_records : int;  (** smaller key space for replicated runs *)
  chain_ops : int;
  tpcc_txs : int;
}

let scaled =
  {
    record_count = 10_000;
    value_size = 1024;
    ops = 8_000;
    node_size = 4096;
    theta = 0.99;
    heap_bytes = 48 * 1024 * 1024;
    chain_records = 10_000;
    chain_ops = 4_000;
    tpcc_txs = 4_000;
  }

let full =
  {
    record_count = 100_000;
    value_size = 1024;
    ops = 50_000;
    node_size = 4096;
    theta = 0.99;
    heap_bytes = 400 * 1024 * 1024;
    chain_records = 20_000;
    chain_ops = 20_000;
    tpcc_txs = 20_000;
  }

let engine_config p =
  {
    Engine.default_config with
    Engine.heap_bytes = p.heap_bytes;
    log_slots = 512;
    max_tx_entries = 192;
    data_log_bytes = 16 * 1024 * 1024;
  }

let kamino_dynamic alpha = Engine.Kamino_dynamic { alpha; policy = Backup.Lru_policy }

(* Build a store and preload [record_count] keys. Bulk-loaded: sorted
   keys go in as whole index leaves ([Kv.load]), so preload is O(n) and a
   million-record table populates in seconds instead of minutes. *)
let make_store ?(config_tweak = Fun.id) p kind =
  let e = Engine.create ~config:(config_tweak (engine_config p)) ~kind ~seed:4242 () in
  let kv = Kv.create e ~value_size:p.value_size ~node_size:p.node_size in
  let payload = String.make (p.value_size - 16) 'k' in
  Kv.load kv ~count:p.record_count ~key:Fun.id ~value:(fun _ -> payload);
  Engine.drain_backup e;
  kv

let value_for p k = Printf.sprintf "%0*d" (p.value_size - 16) (k land 0xffffff)

(* One YCSB run: returns the driver result. *)
let run_ycsb p kv workload ~clients =
  let wl = Ycsb.create workload ~record_count:p.record_count ~theta:p.theta in
  let rng = Rng.create 515 in
  let step ~client:_ () =
    match Ycsb.next wl rng with
    | Ycsb.Read k ->
        ignore (Kv.get kv k);
        "read"
    | Ycsb.Update k ->
        Kv.put kv k (value_for p k);
        "update"
    | Ycsb.Insert k ->
        Kv.put kv k (value_for p k);
        "insert"
    | Ycsb.Scan (k, n) ->
        ignore (Kv.scan kv ~lo:k ~count:n (fun _ _ -> ()));
        "scan"
    | Ycsb.Rmw k ->
        ignore (Kv.read_modify_write kv k (fun s -> s));
        "rmw"
  in
  Driver.run ~engine:(Kv.engine kv) ~clients ~total_ops:p.ops ~step

(* One TPC-C run over a fresh engine of the given kind. *)
let run_tpcc ?(config_tweak = Fun.id) p kind ~clients =
  let e = Engine.create ~config:(config_tweak (engine_config p)) ~kind ~seed:4242 () in
  let rng = Rng.create 616 in
  let t =
    Tpcc.setup e ~warehouses:2 ~districts_per_w:10 ~customers_per_district:60 ~items:1000
      ~rng
  in
  let step ~client:_ () = Tpcc.kind_name (Tpcc.run_mix t rng) in
  let r = Driver.run ~engine:e ~clients ~total_ops:p.tpcc_txs ~step in
  (match Tpcc.consistency_check t with
  | Ok () -> ()
  | Error err -> Printf.printf "!! TPC-C consistency violated: %s\n%!" err);
  r

(* Chain run: multi-client closed loop over a replicated store. *)
let run_chain p mode workload ~clients =
  let c =
    Chain.create
      ~engine_config:{ (engine_config p) with Engine.heap_bytes = p.heap_bytes }
      ~rpc_ns:1000 ~mode ~f:2 ~value_size:p.value_size ~node_size:p.node_size ~seed:747 ()
  in
  let payload = String.make (p.value_size - 16) 'k' in
  let at = ref 0 in
  for k = 0 to p.chain_records - 1 do
    at := Chain.put c ~at:!at k payload
  done;
  let wl = Ycsb.create workload ~record_count:p.chain_records ~theta:p.theta in
  let rng = Rng.create 515 in
  let start = !at in
  let clocks = Array.make clients start in
  let lat = Hashtbl.create 4 in
  let series label =
    match Hashtbl.find_opt lat label with
    | Some s -> s
    | None ->
        let s = Stats.create () in
        Hashtbl.add lat label s;
        s
  in
  for _ = 1 to p.chain_ops do
    let client = ref 0 in
    for i = 1 to clients - 1 do
      if clocks.(i) < clocks.(!client) then client := i
    done;
    let t0 = clocks.(!client) in
    let label, t1 =
      match Ycsb.next wl rng with
      | Ycsb.Read k ->
          let _, t = Chain.get c ~at:t0 k in
          ("read", t)
      | Ycsb.Update k -> ("update", Chain.put c ~at:t0 k payload)
      | Ycsb.Insert k -> ("insert", Chain.put c ~at:t0 k payload)
      | Ycsb.Scan (k, n) ->
          (* scans are served at the tail like reads; model as a read of
             the first key plus the leaf-walk cost at the tail *)
          let _, t = Chain.get c ~at:t0 k in
          ignore n;
          ("scan", t)
      | Ycsb.Rmw k ->
          let _, t = Chain.rmw c ~at:t0 k (fun s -> s) in
          ("rmw", t)
    in
    Stats.add (series label) (float_of_int (t1 - t0));
    clocks.(!client) <- t1
  done;
  let finish = Array.fold_left max start clocks in
  let all = Hashtbl.fold (fun _ s acc -> Stats.merge acc s) lat (Stats.create ()) in
  let elapsed = finish - start in
  let kops =
    if elapsed = 0 then 0.0 else float_of_int p.chain_ops /. (float_of_int elapsed /. 1e9) /. 1e3
  in
  (kops, Stats.mean all, Chain.storage_bytes c)

(* --- Performance-per-dollar pricing (Figure 16) --------------------------

   TCO stand-in (documented substitution): a server base price plus an NVM
   price per dataset-sized multiple. The paper's evaluation ran ~10 GB-scale
   datasets on 112 GB VMs where memory dominates the bill; our scaled heap
   is tiny, so pricing is per heap-equivalent rather than per raw GB to
   preserve the figure's shape. Only ratios matter. Shared between the
   figure bench and the throughput harness's fig16-at-scale sweep so the
   two report the same economics. *)

let server_base_usd = 2000.0

let usd_per_dataset = 2000.0

let dollars_of ~heap_bytes storage_bytes =
  server_base_usd
  +. (float_of_int storage_bytes /. float_of_int heap_bytes *. usd_per_dataset)

let dollars p storage_bytes = dollars_of ~heap_bytes:p.heap_bytes storage_bytes

(* --- Table formatting ---------------------------------------------------- *)

let header title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let row_format widths cells =
  String.concat "  "
    (List.map2 (fun w c -> Printf.sprintf "%-*s" w c) widths cells)

let print_table ~cols rows =
  let widths =
    List.mapi
      (fun i c -> List.fold_left (fun acc r -> max acc (String.length (List.nth r i))) (String.length c) rows)
      cols
  in
  Printf.printf "%s\n" (row_format widths cols);
  Printf.printf "%s\n" (row_format widths (List.map (fun w -> String.make w '-') widths));
  List.iter (fun r -> Printf.printf "%s\n" (row_format widths r)) rows

let f1 v = Printf.sprintf "%.1f" v

let f2 v = Printf.sprintf "%.2f" v

let f3 v = Printf.sprintf "%.3f" v

let us_of_ns ns = ns /. 1000.0
