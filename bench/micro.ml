(* Bechamel wall-clock microbenchmarks: real OCaml execution cost of one
   transactional update per engine kind. The simulated nanoseconds drive
   every figure; this suite additionally sanity-checks that the
   *implementation* cost ordering holds for actually executed instructions
   (the undo/CoW engines run real byte copies per transaction, the Kamino
   engines do not). *)

open Bechamel
module Engine = Kamino_core.Engine
module Backup = Kamino_core.Backup

let kinds =
  [
    ("no-logging", Engine.No_logging);
    ("undo-logging", Engine.Undo_logging);
    ("cow", Engine.Cow);
    ("kamino-simple", Engine.Kamino_simple);
    ("kamino-dyn-50", Engine.Kamino_dynamic { alpha = 0.5; policy = Backup.Lru_policy });
  ]

let config =
  {
    Engine.default_config with
    Engine.heap_bytes = 4 lsl 20;
    log_slots = 128;
    data_log_bytes = 4 lsl 20;
  }

let update_test (name, kind) =
  let e = Engine.create ~config ~kind ~seed:1 () in
  let ptr =
    Engine.with_tx e (fun tx ->
        let ptr = Engine.alloc tx 1024 in
        Engine.write_int64 tx ptr 0 0L;
        ptr)
  in
  Engine.drain_backup e;
  let i = ref 0 in
  Test.make ~name
    (Staged.stage (fun () ->
         incr i;
         Engine.with_tx e (fun tx ->
             Engine.add tx ptr;
             Engine.write_int64 tx ptr 0 (Int64.of_int !i));
         (* Keep the applier queue and intent log bounded. *)
         if !i mod 64 = 0 then Engine.drain_backup e))

let run () =
  Common.header "Microbenchmark: real wall-clock ns per 1 KB-object update transaction";
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) () in
  let rows =
    List.map
      (fun (name, kind) ->
        let test = update_test (name, kind) in
        let results =
          List.map
            (fun elt ->
              let raw = Benchmark.run cfg [ instance ] elt in
              Analyze.one ols instance raw)
            (Test.elements test)
        in
        let estimate =
          List.fold_left
            (fun acc r ->
              match Analyze.OLS.estimates r with Some (x :: _) -> acc +. x | _ -> acc)
            0.0 results
        in
        [ name; Printf.sprintf "%.0f" estimate ])
      kinds
  in
  Common.print_table ~cols:[ "engine"; "wall-clock ns/update" ] rows
