(* Bechamel wall-clock microbenchmarks: real OCaml execution cost of one
   transactional update per engine kind. The simulated nanoseconds drive
   every figure; this suite additionally sanity-checks that the
   *implementation* cost ordering holds for actually executed instructions
   (the undo/CoW engines run real byte copies per transaction, the Kamino
   engines do not). *)

open Bechamel
module Engine = Kamino_core.Engine
module Backup = Kamino_core.Backup
module Region = Kamino_nvm.Region

let kinds =
  [
    ("no-logging", Engine.No_logging);
    ("undo-logging", Engine.Undo_logging);
    ("cow", Engine.Cow);
    ("kamino-simple", Engine.Kamino_simple);
    ("kamino-dyn-50", Engine.Kamino_dynamic { alpha = 0.5; policy = Backup.Lru_policy });
  ]

let config =
  {
    Engine.default_config with
    Engine.heap_bytes = 4 lsl 20;
    log_slots = 128;
    data_log_bytes = 4 lsl 20;
  }

let update_test (name, kind) =
  let e = Engine.create ~config ~kind ~seed:1 () in
  let ptr =
    Engine.with_tx e (fun tx ->
        let ptr = Engine.alloc tx 1024 in
        Engine.write_int64 tx ptr 0 0L;
        ptr)
  in
  Engine.drain_backup e;
  let i = ref 0 in
  Test.make ~name
    (Staged.stage (fun () ->
         incr i;
         Engine.with_tx e (fun tx ->
             Engine.add tx ptr;
             Engine.write_int64 tx ptr 0 (Int64.of_int !i));
         (* Keep the applier queue and intent log bounded. *)
         if !i mod 64 = 0 then Engine.drain_backup e))

(* Large-write-set A/B run for the coalescing + batching pipeline: every
   transaction declares many overlapping field-granular intents, and the
   applier is drained every few dozen transactions so multi-task batches
   form. Returns the simulated NVM traffic (aggregate counters over heap,
   log and backup regions) attributable to the update phase. *)
let coalescing_run ~coalesce =
  let config =
    {
      config with
      Engine.max_tx_entries = 256;
      log_slots = 64;
      coalesce_writes = coalesce;
    }
  in
  let e = Engine.create ~config ~kind:Engine.Kamino_simple ~seed:7 () in
  (* 8 disjoint groups of 8 objects, used round-robin: consecutive
     transactions are independent, so their tasks queue up at the applier
     (the dependency rule only forces immediate catch-up when an object is
     re-touched, one full round later) and the periodic drains see
     multi-task batches. *)
  let groups =
    Array.init 8 (fun _ ->
        Engine.with_tx e (fun tx -> List.init 8 (fun _ -> Engine.alloc tx 1024)))
  in
  Engine.drain_backup e;
  let base = Engine.main_counters e in
  for i = 1 to 256 do
    let objs = groups.(i mod 8) in
    Engine.with_tx e (fun tx ->
        (* Declare first, write after: consecutive declares keep the log's
           entry-merge window open (the pre-write barrier closes it). The
           8-byte fields at stride 4 overlap pairwise, so the coalesced
           write set covers barely half the raw declared bytes. *)
        List.iter
          (fun p ->
            for f = 0 to 23 do
              Engine.add_field tx p (4 * f) 8
            done)
          objs;
        List.iteri
          (fun j p ->
            for f = 0 to 23 do
              Engine.write_int64 tx p (4 * f) (Int64.of_int ((i * 31) + j + f))
            done)
          objs);
    if i mod 32 = 0 then Engine.drain_backup e
  done;
  Engine.drain_backup e;
  let c = Engine.main_counters e in
  let m = Engine.metrics e in
  ( c.Region.bytes_copied - base.Region.bytes_copied,
    c.Region.lines_flushed - base.Region.lines_flushed,
    m.Engine.ranges_coalesced,
    m.Engine.tasks_batched,
    m.Engine.bytes_saved )

let coalescing_report () =
  Common.header
    "Write-set coalescing + batched propagation: NVM traffic, coalescing on vs off";
  let on = coalescing_run ~coalesce:true in
  let off = coalescing_run ~coalesce:false in
  let row name (copied, flushed, rc, tb, bs) =
    [
      name;
      string_of_int copied;
      string_of_int flushed;
      string_of_int rc;
      string_of_int tb;
      string_of_int bs;
    ]
  in
  let pct a b =
    if b = 0 then "n/a"
    else Printf.sprintf "%+.1f%%" (100.0 *. float_of_int (a - b) /. float_of_int b)
  in
  let c_on, f_on, _, _, _ = on and c_off, f_off, _, _, _ = off in
  Common.print_table
    ~cols:
      [
        "coalescing";
        "bytes_copied";
        "lines_flushed";
        "ranges_coalesced";
        "tasks_batched";
        "bytes_saved";
      ]
    [ row "on" on; row "off" off; [ "delta"; pct c_on c_off; pct f_on f_off; ""; ""; "" ] ]

let run () =
  coalescing_report ();
  Common.header "Microbenchmark: real wall-clock ns per 1 KB-object update transaction";
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) () in
  let rows =
    List.map
      (fun (name, kind) ->
        let test = update_test (name, kind) in
        let results =
          List.map
            (fun elt ->
              let raw = Benchmark.run cfg [ instance ] elt in
              Analyze.one ols instance raw)
            (Test.elements test)
        in
        let estimate =
          List.fold_left
            (fun acc r ->
              match Analyze.OLS.estimates r with Some (x :: _) -> acc +. x | _ -> acc)
            0.0 results
        in
        [ name; Printf.sprintf "%.0f" estimate ])
      kinds
  in
  Common.print_table ~cols:[ "engine"; "wall-clock ns/update" ] rows
