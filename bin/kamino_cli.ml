(* kamino — command-line driver for the Kamino-Tx simulation stack.

   Subcommands:
     ycsb        run a YCSB workload against the key-value store
     tpcc        run the TPC-C-lite mix
     crash-test  hammer an engine with random transactions + crash injection
     chain       run a replicated (chain) workload
     fs          run a filesystem workload over lib/fs, fsck it, dump the tree
     trace       run a traced YCSB workload, export a Perfetto timeline
     info        print the cost model and storage layout constants *)

module Rng = Kamino_sim.Rng
module Clock = Kamino_sim.Clock
module Cost_model = Kamino_nvm.Cost_model
module Heap = Kamino_heap.Heap
module Engine = Kamino_core.Engine
module Backup = Kamino_core.Backup
module Kv = Kamino_kv.Kv
module Ycsb = Kamino_workload.Ycsb
module Driver = Kamino_workload.Driver
module Tpcc = Kamino_workload.Tpcc
module Chain = Kamino_chain.Chain
module Chaos = Kamino_chaos.Chaos
module Cchaos = Kamino_chaos.Cluster_chaos
module Shard = Kamino_shard.Shard
module Shard_kv = Kamino_shard.Shard_kv
module Shard_driver = Kamino_shard.Shard_driver
module Obs = Kamino_obs.Obs
module Sink = Kamino_obs.Sink
module Fs = Kamino_fs.Fs
module Fs_check = Kamino_fs.Fs_check
open Cmdliner

(* --- shared arguments ----------------------------------------------------- *)

let engine_kind_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "no-logging" | "nolog" -> Ok Engine.No_logging
    | "undo" | "undo-logging" -> Ok Engine.Undo_logging
    | "cow" -> Ok Engine.Cow
    | "kamino" | "kamino-simple" -> Ok Engine.Kamino_simple
    | s -> (
        (* kamino-dynamic:<alpha> *)
        match String.split_on_char ':' s with
        | [ "kamino-dynamic"; a ] -> (
            match float_of_string_opt a with
            | Some alpha when alpha > 0.0 && alpha <= 1.0 ->
                Ok (Engine.Kamino_dynamic { alpha; policy = Backup.Lru_policy })
            | _ -> Error (`Msg "alpha must be in (0,1]"))
        | _ ->
            Error
              (`Msg
                 "expected no-logging | undo | cow | kamino | kamino-dynamic:<alpha>"))
  in
  Arg.conv (parse, fun fmt k -> Format.pp_print_string fmt (Engine.kind_name k))

let engine_arg =
  Arg.(
    value
    & opt engine_kind_conv Engine.Kamino_simple
    & info [ "e"; "engine" ] ~docv:"ENGINE"
        ~doc:
          "Transaction engine: no-logging, undo, cow, kamino, or \
           kamino-dynamic:<alpha> (e.g. kamino-dynamic:0.3).")

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Deterministic RNG seed.")

let clients_arg =
  Arg.(value & opt int 4 & info [ "c"; "clients" ] ~docv:"N" ~doc:"Concurrent clients.")

let ops_arg =
  Arg.(value & opt int 10_000 & info [ "n"; "ops" ] ~docv:"OPS" ~doc:"Operations to run.")

let records_arg =
  Arg.(
    value & opt int 10_000
    & info [ "r"; "records" ] ~docv:"N" ~doc:"Preloaded keys in the store.")

let heap_mb_arg =
  Arg.(value & opt int 48 & info [ "heap-mb" ] ~docv:"MB" ~doc:"Main heap size in MiB.")

let config_of heap_mb =
  {
    Engine.default_config with
    Engine.heap_bytes = heap_mb * 1024 * 1024;
    log_slots = 512;
    data_log_bytes = 16 * 1024 * 1024;
  }

let print_metrics e =
  let m = Engine.metrics e in
  Printf.printf
    "engine: %d committed, %d aborted, %d critical-path copies, %d backup misses, %d \
     applier tasks, %.1f us total lock wait, %.1f MB NVM\n"
    m.Engine.committed m.Engine.aborted m.Engine.critical_path_copies m.Engine.backup_misses
    m.Engine.applier_tasks
    (float_of_int m.Engine.lock_wait_ns /. 1e3)
    (float_of_int m.Engine.storage_bytes /. 1e6);
  Printf.printf
    "coalescing: %d ranges coalesced, %d tasks batched, %d copy bytes saved\n"
    m.Engine.ranges_coalesced m.Engine.tasks_batched m.Engine.bytes_saved

(* Printed only when the run actually issued snapshot reads. *)
let print_snapshot_summary e =
  let m = Engine.metrics e in
  if m.Engine.snapshot_hits > 0 || m.Engine.snapshot_fallbacks > 0 then begin
    let h =
      Kamino_obs.Metrics.hist (Engine.registry e) "engine.snapshot_staleness_ns"
    in
    Printf.printf
      "snapshot reads: %d backup hits, %d locked fallbacks, staleness p50/p99/max \
       %d/%d/%d ns\n"
      m.Engine.snapshot_hits m.Engine.snapshot_fallbacks
      (Kamino_obs.Metrics.percentile h 50.0)
      (Kamino_obs.Metrics.percentile h 99.0)
      (Kamino_obs.Metrics.max_value h)
  end

let workload_conv =
  Arg.conv
    ( (fun s ->
        match Ycsb.workload_of_string s with
        | Some w -> Ok w
        | None -> Error (`Msg "expected one of A B C D E F")),
      fun fmt w -> Format.pp_print_string fmt (Ycsb.name w) )

let workload_arg =
  Arg.(
    value & opt workload_conv Ycsb.A
    & info [ "w"; "workload" ] ~docv:"WL" ~doc:"YCSB workload.")

(* Shared between [ycsb] and [trace]: preload [records] keys, then stream
   [ops] YCSB operations. [after_load] runs between the two phases (the
   trace command resets the event ring there so the timeline covers only
   the measured workload). *)
let run_ycsb ?(after_load = ignore) ?(snapshot_reads = false) e ~kind ~workload
    ~clients ~ops ~records ~seed =
  let kv = Kv.create e ~value_size:1024 ~node_size:4096 in
  let payload = String.make 1000 'v' in
  Printf.printf "loading %d records...\n%!" records;
  Kv.load kv ~count:records ~key:Fun.id ~value:(fun _ -> payload);
  Engine.drain_backup e;
  after_load ();
  (* Snapshot reads run on their own clock: they serve from the backup at
     the watermark without locks, so their cost never lands on the
     writers' timeline (reported read latency is the reader's). *)
  let reader = Clock.create_at (Engine.now e) in
  let read kv k =
    if snapshot_reads then ignore (Kv.snapshot_get ~clock:reader kv k)
    else ignore (Kv.get kv k)
  in
  let wl = Ycsb.create workload ~record_count:records ~theta:0.99 in
  let rng = Rng.create (seed + 1) in
  Printf.printf "running YCSB-%s: %d ops, %d clients, engine %s%s\n%!"
    (Ycsb.name workload) ops clients (Engine.kind_name kind)
    (if snapshot_reads then ", snapshot reads" else "");
  Driver.run ~engine:e ~clients ~total_ops:ops ~step:(fun ~client:_ () ->
      match Ycsb.next wl rng with
      | Ycsb.Read k ->
          read kv k;
          "read"
      | Ycsb.Update k ->
          Kv.put kv k payload;
          "update"
      | Ycsb.Insert k ->
          Kv.put kv k payload;
          "insert"
      | Ycsb.Scan (k, n) ->
          ignore (Kv.scan kv ~lo:k ~count:n (fun _ _ -> ()));
          "scan"
      | Ycsb.Rmw k ->
          ignore (Kv.read_modify_write kv k Fun.id);
          "rmw")
  |> fun r ->
  (* Refresh the structural gauges (btree.depth) so metric summaries
     printed after the run see the final tree shape. *)
  Kv.sync_gauges kv;
  r

(* --- ycsb ------------------------------------------------------------------ *)

(* Sharded variant of [run_ycsb]: clients are pinned round-robin to home
   shards and draw keys from their shard's slice of the hash-routed key
   space, so every operation is a single-shard transaction and each
   shard's timeline is a standalone engine run. *)
let run_ycsb_sharded ?(snapshot_reads = false) ?(domains = 1) ~config ~kind ~workload
    ~shards ~clients ~ops ~records ~seed () =
  let s = Shard.create ~config ~kind ~seed ~shards () in
  let kv = Shard_kv.create s ~value_size:1024 ~node_size:4096 in
  let payload = String.make 1000 'v' in
  Printf.printf "loading %d records over %d shards...\n%!" records shards;
  for k = 0 to records - 1 do
    Shard_kv.put kv k payload
  done;
  Shard.drain_backups s;
  let own = Array.make shards [] in
  for k = records - 1 downto 0 do
    own.(Shard.route s k) <- k :: own.(Shard.route s k)
  done;
  let own = Array.map Array.of_list own in
  let wls =
    Array.map
      (fun keys -> Ycsb.create workload ~record_count:(Array.length keys) ~theta:0.99)
      own
  in
  let rngs = Array.init clients (fun c -> Rng.create (seed + 1 + c)) in
  let reader = Clock.create_at 0 in
  let read store k =
    if snapshot_reads then ignore (Kv.snapshot_get ~clock:reader store k)
    else ignore (Kv.get store k)
  in
  Printf.printf "running YCSB-%s: %d ops, %d clients, %d shards, %d domains, engine %s%s\n%!"
    (Ycsb.name workload) ops clients shards domains (Engine.kind_name kind)
    (if snapshot_reads then ", snapshot reads" else "");
  let router = Kamino_shard.Shard_router.create s in
  let r =
    Shard_driver.run ~domains ~router ~shard:s ~clients ~total_ops:ops
      ~step:(fun ~client ~shard_id () ->
        let keys = own.(shard_id) in
        (* Inserts (workloads D/E) grow the generator's key space past the
           loaded slice; fold them back onto owned keys. *)
        let key r = keys.(r mod Array.length keys) in
        let store = Shard_kv.store kv shard_id in
        match Ycsb.next wls.(shard_id) rngs.(client) with
        | Ycsb.Read k ->
            read store (key k);
            "read"
        | Ycsb.Update k ->
            Kv.put store (key k) payload;
            "update"
        | Ycsb.Insert k ->
            Kv.put store (key k) payload;
            "insert"
        | Ycsb.Scan (k, n) ->
            ignore (Kv.scan store ~lo:(key k) ~count:n (fun _ _ -> ()));
            "scan"
        | Ycsb.Rmw k ->
            ignore (Kv.read_modify_write store (key k) Fun.id);
            "rmw")
      ()
  in
  (s, r)

let shards_arg =
  Arg.(
    value & opt int 1
    & info [ "shards" ] ~docv:"N"
        ~doc:
          "Partition the heap across $(docv) independent engine shards (per-shard \
           region, intent log, backup, applier and clock). Clients are pinned \
           round-robin to home shards; every operation is a single-shard \
           transaction. Requires $(docv) >= 1; 1 runs the standalone engine.")

let domains_arg =
  Arg.(
    value & opt int 1
    & info [ "domains" ] ~docv:"D"
        ~doc:
          "Run the shard lanes on $(docv) OCaml domains (real cores, clamped to the \
           shard count). Simulated results are bit-identical to $(docv)=1 — only \
           wall-clock time changes. Only meaningful together with $(b,--shards).")

let snapshot_reads_arg =
  Arg.(
    value & flag
    & info [ "snapshot-reads" ]
        ~doc:
          "Serve Read operations from the backup heap at the applier's commit \
           watermark (lock-free, on a dedicated reader clock) instead of through \
           locked transactions. Engines without a full backup fall back to the \
           locked path.")

let ycsb_cmd =
  let run kind workload shards domains clients ops records heap_mb seed snapshot_reads =
    if domains > 1 && shards <= 1 then begin
      prerr_endline "kamino ycsb: --domains needs --shards >= 2 (nothing to parallelize)";
      exit 2
    end;
    if shards <= 1 then begin
      let e = Engine.create ~config:(config_of heap_mb) ~kind ~seed () in
      let r = run_ycsb ~snapshot_reads e ~kind ~workload ~clients ~ops ~records ~seed in
      Format.printf "%a@." Driver.pp_result r;
      List.iter
        (fun (label, s) ->
          Printf.printf "  %-8s %s\n" label (Kamino_sim.Stats.summary s))
        r.Driver.latencies;
      print_metrics e;
      print_snapshot_summary e
    end
    else begin
      let s, r =
        run_ycsb_sharded ~snapshot_reads ~domains ~config:(config_of heap_mb) ~kind
          ~workload ~shards ~clients ~ops ~records ~seed ()
      in
      Format.printf "%a@." Driver.pp_result r;
      List.iter
        (fun (label, st) ->
          Printf.printf "  %-8s %s\n" label (Kamino_sim.Stats.summary st))
        r.Driver.latencies;
      for i = 0 to Shard.shards s - 1 do
        Printf.printf "shard %d: " i;
        print_metrics (Shard.engine s i);
        print_snapshot_summary (Shard.engine s i)
      done
    end
  in
  let term =
    Term.(
      const run $ engine_arg $ workload_arg $ shards_arg $ domains_arg $ clients_arg
      $ ops_arg $ records_arg $ heap_mb_arg $ seed_arg $ snapshot_reads_arg)
  in
  Cmd.v
    (Cmd.info "ycsb"
       ~doc:
         "Run a YCSB workload (A-F) against the key-value store: $(b,--records) keys \
          are preloaded, then $(b,--ops) operations stream from $(b,--clients) \
          simulated clients in deterministic virtual time. $(b,--shards) partitions \
          the heap across independent engines and $(b,--domains) executes the shards \
          on real OCaml domains with bit-identical simulated results. Reports \
          simulated throughput, per-operation latency series and engine metrics.")
    term

(* --- trace ------------------------------------------------------------------ *)

let trace_cmd =
  let out_arg =
    Arg.(
      value & opt string "trace.json"
      & info [ "o"; "out" ] ~docv:"FILE"
          ~doc:"Write Chrome/Perfetto trace-event JSON to $(docv).")
  in
  let ring_arg =
    Arg.(
      value & opt int 65536
      & info [ "ring" ] ~docv:"SLOTS"
          ~doc:
            "Event-ring capacity; once full, the oldest events are overwritten \
             (the drop count is reported).")
  in
  let run kind workload clients ops records heap_mb seed out ring =
    let obs = Obs.create ~capacity:ring () in
    let e = Engine.create ~config:(config_of heap_mb) ~obs ~kind ~seed () in
    let r =
      run_ycsb e ~kind ~workload ~clients ~ops ~records ~seed ~after_load:(fun () ->
          Obs.reset obs)
    in
    Format.printf "%a@." Driver.pp_result r;
    print_string (Sink.summary_string ~obs (Engine.registry e));
    Sink.write_perfetto_file out obs;
    Printf.printf
      "trace: %s — %d events held, %d dropped; open it at https://ui.perfetto.dev \
       or chrome://tracing\n"
      out (Obs.length obs) (Obs.dropped obs)
  in
  let term =
    Term.(
      const run $ engine_arg $ workload_arg $ clients_arg $ ops_arg $ records_arg
      $ heap_mb_arg $ seed_arg $ out_arg $ ring_arg)
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Run a YCSB workload with event tracing on and export a Perfetto timeline \
          plus a metrics summary (counters, sim-time histograms).")
    term

(* --- tpcc ------------------------------------------------------------------ *)

let tpcc_cmd =
  let run kind clients ops heap_mb seed =
    let e = Engine.create ~config:(config_of heap_mb) ~kind ~seed () in
    let rng = Rng.create (seed + 1) in
    let t =
      Tpcc.setup e ~warehouses:2 ~districts_per_w:10 ~customers_per_district:60 ~items:1000
        ~rng
    in
    Printf.printf "running %d TPC-C transactions, %d clients, engine %s\n%!" ops clients
      (Engine.kind_name kind);
    let r =
      Driver.run ~engine:e ~clients ~total_ops:ops ~step:(fun ~client:_ () ->
          Tpcc.kind_name (Tpcc.run_mix t rng))
    in
    Format.printf "%a@." Driver.pp_result r;
    (match Tpcc.consistency_check t with
    | Ok () -> Printf.printf "TPC-C consistency: OK\n"
    | Error e -> Printf.printf "TPC-C consistency VIOLATED: %s\n" e);
    print_metrics e
  in
  let term =
    Term.(const run $ engine_arg $ clients_arg $ ops_arg $ heap_mb_arg $ seed_arg)
  in
  Cmd.v (Cmd.info "tpcc" ~doc:"Run the TPC-C-lite transaction mix.") term

(* --- crash-test ------------------------------------------------------------ *)

let crash_test_cmd =
  let rounds_arg =
    Arg.(value & opt int 200 & info [ "rounds" ] ~docv:"N" ~doc:"Transactions to run.")
  in
  let run kind rounds heap_mb seed =
    (match kind with
    | Engine.No_logging | Engine.Intent_only ->
        prerr_endline "crash-test requires an engine that can recover";
        exit 1
    | _ -> ());
    let e = Engine.create ~config:(config_of heap_mb) ~kind ~seed () in
    let kv = Kv.create e ~value_size:256 ~node_size:512 in
    let rng = Rng.create (seed + 1) in
    let model = Hashtbl.create 64 in
    let kv = ref kv in
    let crashes = ref 0 in
    for round = 1 to rounds do
      let k = Rng.int rng 100 in
      (match Rng.int rng 3 with
      | 0 ->
          let v = Printf.sprintf "r%d" round in
          Kv.put !kv k v;
          Hashtbl.replace model k v
      | 1 ->
          ignore (Kv.delete !kv k);
          Hashtbl.remove model k
      | _ -> ignore (Kv.get !kv k));
      if Rng.int rng 20 = 0 then begin
        incr crashes;
        Engine.crash e;
        Engine.recover e;
        kv := Kv.reattach e
      end
    done;
    let lost = ref 0 in
    Hashtbl.iter (fun k v -> if Kv.get !kv k <> Some v then incr lost) model;
    Printf.printf "%d transactions, %d crashes injected: %s (%d committed keys, %d lost)\n"
      rounds !crashes
      (if !lost = 0 && Kv.validate !kv = Ok () then "CONSISTENT" else "CORRUPTED")
      (Hashtbl.length model) !lost;
    if !lost > 0 then exit 1
  in
  let term = Term.(const run $ engine_arg $ rounds_arg $ heap_mb_arg $ seed_arg) in
  Cmd.v
    (Cmd.info "crash-test"
       ~doc:"Run random transactions with crash injection and verify atomicity.")
    term

(* --- chain ------------------------------------------------------------------ *)

let chain_cmd =
  let mode_arg =
    let mode_conv =
      Arg.conv
        ( (fun s ->
            match String.lowercase_ascii s with
            | "traditional" -> Ok Chain.Traditional
            | "kamino" -> Ok (Chain.Kamino_chain { alpha = None })
            | s -> (
                match String.split_on_char ':' s with
                | [ "kamino"; a ] -> (
                    match float_of_string_opt a with
                    | Some alpha -> Ok (Chain.Kamino_chain { alpha = Some alpha })
                    | None -> Error (`Msg "bad alpha"))
                | _ -> Error (`Msg "expected traditional | kamino | kamino:<alpha>"))),
          fun fmt -> function
            | Chain.Traditional -> Format.pp_print_string fmt "traditional"
            | Chain.Kamino_chain { alpha = None } -> Format.pp_print_string fmt "kamino"
            | Chain.Kamino_chain { alpha = Some a } ->
                Format.fprintf fmt "kamino:%.2f" a )
    in
    Arg.(
      value
      & opt mode_conv (Chain.Kamino_chain { alpha = None })
      & info [ "m"; "mode" ] ~docv:"MODE" ~doc:"traditional | kamino | kamino:<alpha>")
  in
  let f_arg =
    Arg.(value & opt int 2 & info [ "f" ] ~docv:"F" ~doc:"Failures to tolerate.")
  in
  let run mode f ops records seed =
    let c =
      Chain.create
        ~engine_config:{ Engine.default_config with Engine.heap_bytes = 16 * 1024 * 1024 }
        ~mode ~f ~value_size:1024 ~node_size:4096 ~seed ()
    in
    Printf.printf "chain with %d replicas, loading %d records...\n%!" (Chain.length c)
      records;
    let payload = String.make 1000 'v' in
    let at = ref 0 in
    for k = 0 to records - 1 do
      at := Chain.put c ~at:!at k payload
    done;
    let rng = Rng.create (seed + 1) in
    let start = !at in
    let writes = Kamino_sim.Stats.create () and reads = Kamino_sim.Stats.create () in
    for _ = 1 to ops do
      let k = Rng.int rng records in
      let t0 = !at in
      if Rng.bool rng then begin
        at := Chain.put c ~at:t0 k payload;
        Kamino_sim.Stats.add writes (float_of_int (!at - t0))
      end
      else begin
        let _, t = Chain.get c ~at:t0 k in
        at := t;
        Kamino_sim.Stats.add reads (float_of_int (!at - t0))
      end
    done;
    Printf.printf "reads:  %s\nwrites: %s\n"
      (Kamino_sim.Stats.summary reads)
      (Kamino_sim.Stats.summary writes);
    Printf.printf "%.1f K ops/s (single closed-loop client), %.0f MB cluster NVM\n"
      (float_of_int ops /. (float_of_int (!at - start) /. 1e9) /. 1e3)
      (float_of_int (Chain.storage_bytes c) /. 1e6);
    match Chain.replicas_consistent c with
    | Ok () -> Printf.printf "replicas: consistent\n"
    | Error e ->
        Printf.printf "replicas: INCONSISTENT (%s)\n" e;
        exit 1
  in
  let term = Term.(const run $ mode_arg $ f_arg $ ops_arg $ records_arg $ seed_arg) in
  Cmd.v (Cmd.info "chain" ~doc:"Run a replicated chain workload.") term

(* --- fuzz ------------------------------------------------------------------- *)

let fuzz_cmd =
  let seeds_arg =
    Arg.(value & opt int 50 & info [ "seeds" ] ~docv:"N" ~doc:"Distinct RNG seeds to fuzz.")
  in
  let rounds_arg =
    Arg.(
      value & opt int 100 & info [ "rounds" ] ~docv:"N" ~doc:"Transactions per seed.")
  in
  let run kind seeds rounds =
    (match kind with
    | Engine.No_logging | Engine.Intent_only ->
        prerr_endline "fuzz requires an engine that can recover";
        exit 1
    | _ -> ());
    let failures = ref 0 in
    for seed = 1 to seeds do
      let e =
        Engine.create ~config:(config_of 8) ~kind ~seed ()
      in
      let kv = ref (Kv.create e ~value_size:256 ~node_size:512) in
      let rng = Rng.create (seed * 7919) in
      let model = Hashtbl.create 64 in
      (try
         for round = 1 to rounds do
           let k = Rng.int rng 100 in
           (match Rng.int rng 4 with
           | 0 ->
               let v = Printf.sprintf "s%dr%d" seed round in
               Kv.put !kv k v;
               Hashtbl.replace model k v
           | 1 ->
               ignore (Kv.delete !kv k);
               Hashtbl.remove model k
           | 2 -> ignore (Kv.read_modify_write !kv k (fun s -> s ^ "."));
                  (match Hashtbl.find_opt model k with
                   | Some v -> Hashtbl.replace model k (v ^ ".")
                   | None -> ())
           | _ -> ignore (Kv.get !kv k));
           if Rng.int rng 10 = 0 then begin
             Engine.crash e;
             Engine.recover e;
             kv := Kv.reattach e
           end
         done;
         Engine.drain_backup e;
         let ok = ref true in
         Hashtbl.iter (fun k v -> if Kv.get !kv k <> Some v then ok := false) model;
         if Kv.validate !kv <> Ok () then ok := false;
         (match Engine.verify_backup e with Ok () -> () | Error _ -> ok := false);
         if not !ok then begin
           incr failures;
           Printf.printf "seed %d: FAILED (state diverged)\n%!" seed
         end
       with exn ->
         incr failures;
         Printf.printf "seed %d: EXCEPTION %s\n%!" seed (Printexc.to_string exn))
    done;
    if !failures = 0 then
      Printf.printf "fuzz: %d seeds x %d rounds with crash injection — all consistent\n"
        seeds rounds
    else begin
      Printf.printf "fuzz: %d of %d seeds FAILED\n" !failures seeds;
      exit 1
    end
  in
  let term = Term.(const run $ engine_arg $ seeds_arg $ rounds_arg) in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Fuzz an engine across many seeds: random transactions, random crash \
          injection, full state verification per seed.")
    term

(* --- chaos ------------------------------------------------------------------ *)

let chaos_cmd =
  let mode_conv =
    Arg.conv
      ( (fun s ->
          match Chaos.mode_of_string s with
          | Some m -> Ok m
          | None -> Error (`Msg "expected traditional | kamino")),
        fun fmt m -> Format.pp_print_string fmt (Chaos.mode_name m) )
  in
  let mode_arg =
    Arg.(
      value
      & opt mode_conv Kamino_chain.Async_chain.Kamino_chain
      & info [ "m"; "mode" ] ~docv:"MODE" ~doc:"traditional | kamino")
  in
  let chaos_ops_arg =
    Arg.(
      value & opt int 40
      & info [ "n"; "ops" ] ~docv:"OPS" ~doc:"Client operations per run.")
  in
  let faults_arg =
    Arg.(
      value & opt int 6 & info [ "faults" ] ~docv:"N" ~doc:"Faults drawn per schedule.")
  in
  let sweep_arg =
    Arg.(
      value & opt int 0
      & info [ "sweep" ] ~docv:"N"
          ~doc:"Explore $(docv) consecutive seeds instead of a single run.")
  in
  let schedule_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "schedule" ] ~docv:"FILE"
          ~doc:"Replay a serialized fault schedule instead of drawing one.")
  in
  let out_dir_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "out-dir" ] ~docv:"DIR"
          ~doc:"Write failing schedules and histories here as artifacts.")
  in
  let history_arg =
    Arg.(
      value & flag
      & info [ "history" ] ~doc:"Print the full run record, not just the verdict.")
  in
  let broken_arg =
    Arg.(
      value & flag
      & info [ "broken-recovery" ]
          ~doc:
            "Deliberately forget the in-flight window on reboot (oracle self-test: \
             the durable-prefix oracle must catch this).")
  in
  let trace_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Write a Chrome/Perfetto timeline of the run to $(docv): chain hops, \
             view changes, promotions, per-node engine events, and one instant per \
             injected fault. Applies to a single run or a $(b,--schedule) replay, \
             not to $(b,--sweep).")
  in
  let save_artifacts dir (o : Chaos.outcome) shrunk =
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    let base = Printf.sprintf "%s/chaos-%s-seed%d" dir (Chaos.mode_name o.Chaos.mode) o.Chaos.seed in
    let write path s =
      let oc = open_out path in
      output_string oc s;
      close_out oc
    in
    write (base ^ ".schedule") (Chaos.schedule_to_string shrunk);
    write (base ^ ".history") o.Chaos.history;
    Printf.printf "  artifacts: %s.{schedule,history}\n%!" base
  in
  let report_failure ~mode ~seed ~ops out_dir recovery_fault (o : Chaos.outcome) =
    let shrunk = Chaos.shrink ~recovery_fault ~mode ~seed ~ops o.Chaos.schedule in
    Printf.printf "  shrunk to %d fault(s):\n%s%!" (List.length shrunk)
      (String.concat ""
         (List.map (fun f -> "    " ^ Chaos.fault_to_string f ^ "\n") shrunk));
    Option.iter (fun dir -> save_artifacts dir o shrunk) out_dir
  in
  let run mode seed ops faults sweep schedule_file out_dir history broken trace =
    let recovery_fault =
      if broken then Kamino_chain.Async_chain.Drop_inflight_on_reboot
      else Kamino_chain.Async_chain.No_fault
    in
    let obs =
      match trace with Some _ -> Obs.create () | None -> Obs.null
    in
    let write_trace () =
      Option.iter
        (fun path ->
          Sink.write_perfetto_file path obs;
          Printf.printf "trace: %s — %d events held, %d dropped\n%!" path
            (Obs.length obs) (Obs.dropped obs))
        trace
    in
    match schedule_file with
    | Some path -> (
        let ic = open_in path in
        let len = in_channel_length ic in
        let s = really_input_string ic len in
        close_in ic;
        match Chaos.schedule_of_string s with
        | Error e ->
            Printf.eprintf "bad schedule file: %s\n" e;
            exit 2
        | Ok schedule ->
            let o = Chaos.run ~recovery_fault ~obs ~mode ~seed ~ops ~schedule () in
            print_string o.Chaos.history;
            write_trace ();
            if o.Chaos.verdict <> Ok () then exit 1)
    | None ->
        if sweep > 0 then begin
          let failures = ref 0 in
          for s = seed to seed + sweep - 1 do
            let o = Chaos.explore ~recovery_fault ~ops ~faults ~mode ~seed:s () in
            match o.Chaos.verdict with
            | Ok () ->
                Printf.printf
                  "seed %d: PASS (%d events, %d/%d acked, %d reads, %d stale drops, %d \
                   survivors)\n%!"
                  s o.Chaos.events o.Chaos.acked o.Chaos.submitted o.Chaos.reads
                  o.Chaos.stale_drops
                  (List.length o.Chaos.survivors)
            | Error e ->
                incr failures;
                Printf.printf "seed %d: FAIL — %s\n%!" s e;
                report_failure ~mode ~seed:s ~ops out_dir recovery_fault o
          done;
          Printf.printf "chaos sweep: %d seeds, %d failure(s), mode %s\n" sweep !failures
            (Chaos.mode_name mode);
          if !failures > 0 then exit 1
        end
        else begin
          let o = Chaos.explore ~recovery_fault ~obs ~ops ~faults ~mode ~seed () in
          if history then print_string o.Chaos.history
          else begin
            Printf.printf "mode=%s seed=%d ops=%d: %s\n" (Chaos.mode_name mode) seed ops
              (match o.Chaos.verdict with Ok () -> "PASS" | Error e -> "FAIL — " ^ e);
            Printf.printf
              "  %d events, %d submitted, %d acked, %d reads, %d stale drops, survivors \
               [%s]\n"
              o.Chaos.events o.Chaos.submitted o.Chaos.acked o.Chaos.reads
              o.Chaos.stale_drops
              (String.concat ";" (List.map string_of_int o.Chaos.survivors))
          end;
          write_trace ();
          if o.Chaos.verdict <> Ok () then begin
            report_failure ~mode ~seed ~ops out_dir recovery_fault o;
            exit 1
          end
        end
  in
  let term =
    Term.(
      const run $ mode_arg $ seed_arg $ chaos_ops_arg $ faults_arg $ sweep_arg
      $ schedule_arg $ out_dir_arg $ history_arg $ broken_arg $ trace_arg)
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Explore random fault schedules against the replicated chain and check the \
          linearizability and durable-prefix oracles.")
    term

(* --- cluster ----------------------------------------------------------------- *)

let cluster_cmd =
  let ops_arg =
    Arg.(
      value & opt int 30
      & info [ "n"; "ops" ] ~docv:"OPS"
          ~doc:"Client operations per run (writes, cross-shard multi_puts, reads).")
  in
  let faults_arg =
    Arg.(
      value & opt int 6 & info [ "faults" ] ~docv:"N" ~doc:"Faults drawn per schedule.")
  in
  let sweep_arg =
    Arg.(
      value & opt int 0
      & info [ "sweep" ] ~docv:"N"
          ~doc:"Explore $(docv) consecutive seeds instead of a single run.")
  in
  let schedule_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "schedule" ] ~docv:"FILE"
          ~doc:"Replay a serialized fault schedule instead of drawing one.")
  in
  let out_dir_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "out-dir" ] ~docv:"DIR"
          ~doc:"Write failing schedules and histories here as artifacts.")
  in
  let history_arg =
    Arg.(
      value & flag
      & info [ "history" ] ~doc:"Print the full run record, not just the verdict.")
  in
  let broken_arg =
    Arg.(
      value & flag
      & info [ "broken-recovery" ]
          ~doc:
            "Deliberately forget the in-flight window on reboot (oracle self-test: \
             the cluster oracles must catch this).")
  in
  let save_artifacts dir (o : Cchaos.outcome) shrunk =
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    let base = Printf.sprintf "%s/cluster-seed%d" dir o.Cchaos.seed in
    let write path s =
      let oc = open_out path in
      output_string oc s;
      close_out oc
    in
    write (base ^ ".schedule") (Cchaos.schedule_to_string shrunk);
    write (base ^ ".history") o.Cchaos.history;
    Printf.printf "  artifacts: %s.{schedule,history}\n%!" base
  in
  let report_failure ~seed ~ops out_dir recovery_fault (o : Cchaos.outcome) =
    let shrunk = Cchaos.shrink ~recovery_fault ~seed ~ops o.Cchaos.schedule in
    Printf.printf "  shrunk to %d fault(s):\n%s%!" (List.length shrunk)
      (String.concat ""
         (List.map (fun f -> "    " ^ Cchaos.fault_to_string f ^ "\n") shrunk));
    Option.iter (fun dir -> save_artifacts dir o shrunk) out_dir
  in
  let summary (o : Cchaos.outcome) =
    Printf.sprintf
      "%d events, %d/%d writes acked, %d/%d multis acked (%d cross-chain), %d \
       redrives, %d reads, %d stale drops, commit p50/p95/p99 = %d/%d/%d ns"
      o.Cchaos.events o.Cchaos.acked o.Cchaos.submitted o.Cchaos.multis_acked
      o.Cchaos.multis o.Cchaos.crossed o.Cchaos.redrives o.Cchaos.reads
      o.Cchaos.stale_drops o.Cchaos.p50_ns o.Cchaos.p95_ns o.Cchaos.p99_ns
  in
  let run seed ops faults sweep schedule_file out_dir history broken =
    let recovery_fault =
      if broken then Kamino_chain.Async_chain.Drop_inflight_on_reboot
      else Kamino_chain.Async_chain.No_fault
    in
    match schedule_file with
    | Some path -> (
        let ic = open_in path in
        let len = in_channel_length ic in
        let s = really_input_string ic len in
        close_in ic;
        match Cchaos.schedule_of_string s with
        | Error e ->
            Printf.eprintf "bad schedule file: %s\n" e;
            exit 2
        | Ok schedule ->
            let o = Cchaos.run ~recovery_fault ~seed ~ops ~schedule () in
            print_string o.Cchaos.history;
            if o.Cchaos.verdict <> Ok () then exit 1)
    | None ->
        if sweep > 0 then begin
          let failures = ref 0 in
          for s = seed to seed + sweep - 1 do
            let o = Cchaos.explore ~recovery_fault ~ops ~faults ~seed:s () in
            match o.Cchaos.verdict with
            | Ok () -> Printf.printf "seed %d: PASS (%s)\n%!" s (summary o)
            | Error e ->
                incr failures;
                Printf.printf "seed %d: FAIL — %s\n%!" s e;
                report_failure ~seed:s ~ops out_dir recovery_fault o
          done;
          Printf.printf "cluster sweep: %d seeds, %d failure(s)\n" sweep !failures;
          if !failures > 0 then exit 1
        end
        else begin
          let o = Cchaos.explore ~recovery_fault ~ops ~faults ~seed () in
          if history then print_string o.Cchaos.history
          else begin
            Printf.printf "cluster seed=%d ops=%d shards=%d f=%d: %s\n" seed ops
              Cchaos.cluster_shards Cchaos.cluster_f
              (match o.Cchaos.verdict with Ok () -> "PASS" | Error e -> "FAIL — " ^ e);
            Printf.printf "  %s\n  fingerprint %s\n" (summary o) o.Cchaos.fingerprint
          end;
          if o.Cchaos.verdict <> Ok () then begin
            report_failure ~seed ~ops out_dir recovery_fault o;
            exit 1
          end
        end
  in
  let term =
    Term.(
      const run $ seed_arg $ ops_arg $ faults_arg $ sweep_arg $ schedule_arg
      $ out_dir_arg $ history_arg $ broken_arg)
  in
  Cmd.v
    (Cmd.info "cluster"
       ~doc:
         "Explore random fault schedules against the replicated shard-cluster \
          (chain-per-shard, cross-shard 2PC over chain heads) and check the \
          durable-prefix, cluster-atomicity, linearizability and quiescence \
          oracles.")
    term

(* --- fs --------------------------------------------------------------------- *)

let fs_cmd =
  let rounds_arg =
    Arg.(
      value & opt int 2_000
      & info [ "n"; "ops" ] ~docv:"OPS" ~doc:"Filesystem operations to run.")
  in
  let crashes_arg =
    Arg.(
      value & opt ~vopt:20 int 0
      & info [ "crashes" ] ~docv:"N"
          ~doc:
            "Inject N crash/recover/fsck cycles at operation boundaries during \
             the run.")
  in
  let dump_arg =
    Arg.(
      value & flag
      & info [ "dump" ] ~doc:"Print the directory tree after the run.")
  in
  let run kind heap_mb seed rounds crashes dump =
    let e = Engine.create ~config:(config_of heap_mb) ~kind ~seed () in
    let fs = Fs.format ~block_size:512 ~dir_hash_bits:6 e in
    let root = Fs.root_ino fs in
    let rng = Rng.create (seed + 1) in
    let dirs = ref [ root ] in
    let files = ref [] in
    let pick l = List.nth l (Rng.int rng (List.length l)) in
    let gen_name tag = Printf.sprintf "%s%d" tag (Rng.int rng 40) in
    let ignore_fs_errors f = try f () with Fs.Fs_error _ -> () in
    let with_ino dir name f =
      match Fs.lookup fs ~dir name with Some ino -> f ino | None -> ()
    in
    let fsck ctx =
      match Fs_check.fsck fs with
      | Ok () -> ()
      | Error err ->
          Printf.eprintf "CORRUPTED (%s): %s\n" ctx err;
          exit 1
    in
    let crash_every = if crashes = 0 then max_int else max 1 (rounds / crashes) in
    let crashed = ref 0 in
    for round = 1 to rounds do
      (match Rng.int rng 10 with
      | 0 ->
          ignore_fs_errors (fun () ->
              dirs := Fs.mkdir fs ~dir:(pick !dirs) (gen_name "d") :: !dirs)
      | 1 | 2 ->
          ignore_fs_errors (fun () ->
              files := (pick !dirs, gen_name "f") :: !files;
              ignore (Fs.create fs ~dir:(fst (List.hd !files)) (snd (List.hd !files))))
      | 3 | 4 | 5 when !files <> [] ->
          let dir, name = pick !files in
          ignore_fs_errors (fun () ->
              with_ino dir name (fun ino ->
                  Fs.write fs ~ino ~off:(Rng.int rng 2048)
                    (Printf.sprintf "round-%d" round)))
      | 6 when !files <> [] ->
          let dir, name = pick !files in
          ignore_fs_errors (fun () ->
              with_ino dir name (fun ino ->
                  Fs.truncate fs ~ino ~len:(Rng.int rng 4096)))
      | 7 when !files <> [] ->
          let src, src_name = pick !files in
          let dst = pick !dirs and dst_name = gen_name "f" in
          ignore_fs_errors (fun () ->
              Fs.rename fs ~src ~src_name ~dst ~dst_name;
              files :=
                (dst, dst_name)
                :: List.filter (fun en -> en <> (src, src_name)) !files)
      | 8 when !files <> [] ->
          let dir, name = pick !files in
          ignore_fs_errors (fun () ->
              Fs.unlink fs ~dir name;
              files := List.filter (fun en -> en <> (dir, name)) !files)
      | _ -> ignore_fs_errors (fun () -> ignore (Fs.readdir fs ~dir:(pick !dirs))));
      if round mod crash_every = 0 && round < rounds then begin
        incr crashed;
        Engine.crash e;
        Engine.recover e;
        fsck (Printf.sprintf "after crash %d" !crashed)
      end
    done;
    Engine.drain_backup e;
    fsck "final";
    if dump then print_string (Fs.dump fs);
    let reg = Engine.registry e in
    let p op =
      let h = Kamino_obs.Metrics.hist reg ("fs.op_ns." ^ op) in
      if Kamino_obs.Metrics.count h = 0 then ""
      else
        Printf.sprintf "  %-8s %6d ops  p50/p95/p99 %d/%d/%d sim-ns\n" op
          (Kamino_obs.Metrics.count h)
          (Kamino_obs.Metrics.percentile h 50.0)
          (Kamino_obs.Metrics.percentile h 95.0)
          (Kamino_obs.Metrics.percentile h 99.0)
    in
    Printf.printf "%d fs ops on %s, %d boundary crashes injected: CONSISTENT\n" rounds
      (Engine.kind_name kind) !crashed;
    List.iter
      (fun op -> print_string (p op))
      [ "create"; "mkdir"; "write"; "truncate"; "rename"; "unlink"; "readdir"; "fsck" ];
    print_metrics e
  in
  let term =
    Term.(const run $ engine_arg $ heap_mb_arg $ seed_arg $ rounds_arg $ crashes_arg
          $ dump_arg)
  in
  Cmd.v
    (Cmd.info "fs"
       ~doc:
         "Run a random filesystem workload over the transactional inode layer, \
          optionally crash-injecting at operation boundaries, then fsck and \
          dump the tree.")
    term

(* --- info ------------------------------------------------------------------- *)

let info_cmd =
  let run () =
    Format.printf "cost model (NVDIMM-class default): %a@." Cost_model.pp Cost_model.default;
    Format.printf "cost model (3DXP-class):           %a@." Cost_model.pp Cost_model.slow_nvm;
    Printf.printf "heap size classes: %s\n"
      (String.concat ", " (Array.to_list (Array.map string_of_int Heap.size_classes)));
    Printf.printf "max object size: %d bytes\n" Heap.max_object_size
  in
  Cmd.v
    (Cmd.info "info" ~doc:"Print cost-model and storage-layout constants.")
    Term.(const run $ const ())

let () =
  let doc = "Kamino-Tx: atomic in-place updates for non-volatile main memory (simulated)" in
  let cmd =
    Cmd.group (Cmd.info "kamino" ~doc)
      [
        ycsb_cmd;
        tpcc_cmd;
        crash_test_cmd;
        fuzz_cmd;
        chain_cmd;
        chaos_cmd;
        cluster_cmd;
        fs_cmd;
        trace_cmd;
        info_cmd;
      ]
  in
  exit (Cmd.eval cmd)
